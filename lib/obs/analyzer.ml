(* Reconstruct per-operation timelines from a trace dump.

   The input is the JSONL produced by [Trace.to_jsonl] (or the live
   event list).  Events sharing a non-zero trace id form one operation's
   timeline; consecutive events become "hops" whose latencies are
   aggregated into mergeable histograms, resend/duplicate chains are
   counted per operation, and completed round trips are grouped by
   partition to expose skew. *)

type timeline = {
  tl_tid : int;
  tl_events : Trace.event list; (* causal (seq) order *)
  tl_part : int option;
  tl_resends : int;
  tl_skips : int; (* DC idempotence-skips: duplicate deliveries absorbed *)
  tl_complete : bool; (* has both a dispatch and an ack *)
  tl_rtt_ns : int option; (* first dispatch -> last ack *)
}

type report = {
  r_timelines : timeline list;
  r_orphans : int;
  r_hops : (string * Metrics.hsnap) list;
  r_parts : (int * Metrics.hsnap) list; (* per-partition round trips *)
  r_repl : (string * int) list; (* replication events by kind (ship/ack/…) *)
  r_layer : (string * int) list; (* layer-store events by kind (compact/…) *)
  r_front : (string * int) list;
      (* session front-end events by kind (admitted/shed/batched) *)
  r_branch : (string * int) list;
      (* copy-on-write branch events by kind (create/delete/dc_crash) *)
}

(* ---- JSONL parsing ---------------------------------------------------- *)

(* A strict parser for exactly the shape [Trace.to_jsonl] emits; raises
   [Invalid_argument] on anything else.  Keeping emitter and parser as a
   pinned pair (see the round-trip property in the test suite) avoids a
   JSON dependency. *)

let fail () = invalid_arg "Analyzer: malformed trace line"

type cursor = { s : string; mutable pos : int }

let expect c lit =
  let n = String.length lit in
  if c.pos + n > String.length c.s || String.sub c.s c.pos n <> lit then fail ();
  c.pos <- c.pos + n

let parse_int c =
  let start = c.pos in
  if c.pos < String.length c.s && c.s.[c.pos] = '-' then c.pos <- c.pos + 1;
  while c.pos < String.length c.s
        && match c.s.[c.pos] with '0' .. '9' -> true | _ -> false do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail ();
  match int_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some i -> i
  | None -> fail ()

let parse_float c =
  let start = c.pos in
  while c.pos < String.length c.s
        && match c.s.[c.pos] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail ();
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some f -> f
  | None -> fail ()

(* The opening quote has been consumed; reads through the closing one. *)
let parse_string c =
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then fail ();
    match c.s.[c.pos] with
    | '"' -> c.pos <- c.pos + 1
    | '\\' ->
      if c.pos + 1 >= String.length c.s then fail ();
      (match c.s.[c.pos + 1] with
      | '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 2
      | '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 2
      | 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 2
      | 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 2
      | 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 2
      | 'u' ->
        if c.pos + 6 > String.length c.s then fail ();
        (match int_of_string_opt ("0x" ^ String.sub c.s (c.pos + 2) 4) with
        | Some code when code < 256 ->
          Buffer.add_char buf (Char.chr code);
          c.pos <- c.pos + 6
        | _ -> fail ())
      | _ -> fail ());
      go ()
    | ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_attrs c =
  expect c "{";
  if c.pos < String.length c.s && c.s.[c.pos] = '}' then begin
    c.pos <- c.pos + 1;
    []
  end
  else begin
    let rec pairs acc =
      expect c "\"";
      let k = parse_string c in
      expect c ":\"";
      let v = parse_string c in
      let acc = (k, v) :: acc in
      if c.pos < String.length c.s && c.s.[c.pos] = ',' then begin
        c.pos <- c.pos + 1;
        pairs acc
      end
      else begin
        expect c "}";
        List.rev acc
      end
    in
    pairs []
  end

let parse_line line =
  let c = { s = line; pos = 0 } in
  expect c "{\"tid\":";
  let tid = parse_int c in
  expect c ",\"seq\":";
  let seq = parse_int c in
  expect c ",\"t\":";
  let t = parse_float c in
  expect c ",\"comp\":\"";
  let comp = parse_string c in
  expect c ",\"ev\":\"";
  let ev = parse_string c in
  expect c ",\"attrs\":";
  let attrs = parse_attrs c in
  expect c "}";
  if c.pos <> String.length line then fail ();
  { Trace.e_tid = tid; e_seq = seq; e_t = t; e_comp = comp; e_ev = ev;
    e_attrs = attrs }

let of_jsonl s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "")
  |> List.map parse_line

(* ---- reconstruction --------------------------------------------------- *)

(* A hop label folds the direction attribute in, so the request and
   reply legs of the data channel aggregate separately. *)
let label (e : Trace.event) =
  match List.assoc_opt "dir" e.Trace.e_attrs with
  | Some d -> e.Trace.e_ev ^ "." ^ d
  | None -> e.Trace.e_ev

let ns_between (a : Trace.event) (b : Trace.event) =
  max 0 (int_of_float ((b.Trace.e_t -. a.Trace.e_t) *. 1e9))

let analyze events =
  let by_tid : (int, Trace.event list) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.e_tid <> 0 then begin
        if not (Hashtbl.mem by_tid e.Trace.e_tid) then
          order := e.Trace.e_tid :: !order;
        Hashtbl.replace by_tid e.Trace.e_tid
          (e :: Option.value ~default:[] (Hashtbl.find_opt by_tid e.Trace.e_tid))
      end)
    events;
  let hops = Metrics.create () in
  let parts : (int, Metrics.hsnap) Hashtbl.t = Hashtbl.create 8 in
  let part_reg = Metrics.create () in
  let timelines =
    List.rev_map
      (fun tid ->
        let evs =
          List.sort
            (fun (a : Trace.event) b -> Int.compare a.Trace.e_seq b.Trace.e_seq)
            (Hashtbl.find by_tid tid)
        in
        let rec hop_walk = function
          | a :: (b :: _ as rest) ->
            Metrics.observe hops (label a ^ "->" ^ label b) (ns_between a b);
            hop_walk rest
          | _ -> ()
        in
        hop_walk evs;
        let count ev =
          List.length (List.filter (fun e -> e.Trace.e_ev = ev) evs)
        in
        let find ev = List.find_opt (fun e -> e.Trace.e_ev = ev) evs in
        let find_last ev =
          List.fold_left
            (fun acc e -> if e.Trace.e_ev = ev then Some e else acc)
            None evs
        in
        let part =
          List.find_map
            (fun e ->
              Option.bind
                (List.assoc_opt "part" e.Trace.e_attrs)
                int_of_string_opt)
            evs
        in
        let rtt =
          match (find "dispatch", find_last "ack") with
          | Some d, Some a -> Some (ns_between d a)
          | _ -> None
        in
        (match (rtt, part) with
        | Some ns, Some p ->
          Metrics.observe part_reg (string_of_int p) ns;
          Hashtbl.replace parts p Metrics.empty_hsnap
        | _ -> ());
        {
          tl_tid = tid;
          tl_events = evs;
          tl_part = part;
          tl_resends = count "resend";
          tl_skips = count "skip";
          tl_complete = rtt <> None;
          tl_rtt_ns = rtt;
        })
      !order
  in
  let r_parts =
    Hashtbl.fold
      (fun p _ acc ->
        match Metrics.hist_snapshot part_reg (string_of_int p) with
        | Some s -> (p, s) :: acc
        | None -> acc)
      parts []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  (* Replication traffic is untraced (tid 0 — no operation owns a ship),
     so it is counted by event kind rather than joined into timelines. *)
  let count_component comp =
    let counts = Hashtbl.create 4 in
    List.iter
      (fun (e : Trace.event) ->
        if e.Trace.e_comp = comp then
          Hashtbl.replace counts e.Trace.e_ev
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.Trace.e_ev)))
      events;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let r_repl = count_component "repl" in
  (* Layer-store traffic (compactions, bootstraps) is likewise untraced
     per-operation; count it by kind. *)
  let r_layer = count_component "layer" in
  (* Front-end admission traffic has no per-operation span either — a
     shed transaction never reaches a TC; count it by kind. *)
  let r_front = count_component "front" in
  (* Branch forks/deletes/DC-crashes are control operations with no
     per-transaction span; count them by kind too. *)
  let r_branch = count_component "branch" in
  {
    r_timelines = timelines;
    r_orphans =
      List.length (List.filter (fun tl -> not tl.tl_complete) timelines);
    r_hops =
      List.filter_map
        (fun name ->
          Option.map (fun s -> (name, s)) (Metrics.hist_snapshot hops name))
        (Metrics.hist_names hops);
    r_parts;
    r_repl;
    r_layer;
    r_front;
    r_branch;
  }

let pp_summary ppf r =
  Format.fprintf ppf "@[<v>ops traced: %d (orphans: %d)@,"
    (List.length r.r_timelines) r.r_orphans;
  let resends =
    List.fold_left (fun acc tl -> acc + tl.tl_resends) 0 r.r_timelines
  and skips =
    List.fold_left (fun acc tl -> acc + tl.tl_skips) 0 r.r_timelines
  in
  Format.fprintf ppf "resends: %d, duplicate deliveries absorbed: %d@,"
    resends skips;
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "hop %-24s %a@," name Metrics.pp_hsnap s)
    r.r_hops;
  List.iter
    (fun (p, s) ->
      Format.fprintf ppf "partition %d rtt: %a@," p Metrics.pp_hsnap s)
    r.r_parts;
  if r.r_repl <> [] then begin
    Format.fprintf ppf "repl:";
    List.iter (fun (ev, n) -> Format.fprintf ppf " %s=%d" ev n) r.r_repl;
    Format.fprintf ppf "@,"
  end;
  if r.r_layer <> [] then begin
    Format.fprintf ppf "layer:";
    List.iter (fun (ev, n) -> Format.fprintf ppf " %s=%d" ev n) r.r_layer;
    Format.fprintf ppf "@,"
  end;
  if r.r_front <> [] then begin
    Format.fprintf ppf "front:";
    List.iter (fun (ev, n) -> Format.fprintf ppf " %s=%d" ev n) r.r_front;
    Format.fprintf ppf "@,"
  end;
  if r.r_branch <> [] then begin
    Format.fprintf ppf "branch:";
    List.iter (fun (ev, n) -> Format.fprintf ppf " %s=%d" ev n) r.r_branch;
    Format.fprintf ppf "@,"
  end;
  Format.fprintf ppf "@]"
