(** The observability registry: named counters plus fixed-bucket
    latency/size histograms.

    Counters keep the old [Instrument] contract exactly (that module is
    now a thin shim over this one).  Histograms use geometric buckets —
    four sub-buckets per power of two — so percentile estimates
    overshoot the true value by at most ~25% while snapshots stay
    mergeable by bucket addition.  Timing helpers are near-zero-cost
    while [set_timed] is off: one field read and one float compare per
    instrumented site. *)

type t

val create : unit -> t

val global : t
(** A process-wide registry, convenient for benches. *)

(** {2 Counters (the [Instrument] contract)} *)

val counter_cell : t -> string -> int ref

val bump : t -> string -> unit

val bump_by : t -> string -> int -> unit

val get_counter : t -> string -> int

val reset_counters : t -> unit
(** Zero every counter; histograms are untouched. *)

val counter_snapshot : t -> (string * int) list
(** All counters, sorted by name — deterministic, no timing data. *)

val pp_counters : Format.formatter -> t -> unit

(** {2 Histograms} *)

type hsnap = {
  s_count : int;
  s_sum : int;
  s_min : int;  (** [max_int] when empty *)
  s_max : int;
  s_buckets : int array;
}
(** A mergeable point-in-time copy of one histogram. *)

val observe : t -> string -> int -> unit
(** Record a non-negative sample (negatives clamp to 0).  Units are the
    caller's: the built-in instrumentation uses nanoseconds for
    latencies and bytes for sizes ([*_ns] / [*_bytes] name suffixes). *)

val set_timed : t -> bool -> unit
(** Enable or disable the [start]/[stop] timing helpers (default off). *)

val timed : t -> bool

val start : t -> float
(** A timestamp to pass to [stop], or a negative sentinel when timing
    is disabled. *)

val stop : t -> string -> float -> unit
(** Record the elapsed nanoseconds since [start]'s timestamp into the
    named histogram; a no-op on the disabled sentinel. *)

val hist_snapshot : t -> string -> hsnap option

val hist_names : t -> string list

val empty_hsnap : hsnap

val merge : hsnap -> hsnap -> hsnap
(** Bucket-wise sum: [merge (snap a) (snap b)] equals the snapshot of
    recording both sample streams into one histogram. *)

val percentile : hsnap -> float -> int
(** [percentile s p] for [p] in [0..100]: the upper bound of the bucket
    holding the p-th ordered sample, clamped to the true maximum. *)

val mean : hsnap -> float

val fmt_ns : int -> string
(** Render nanoseconds with a human unit (ns/us/ms/s). *)

val pp_hsnap : Format.formatter -> hsnap -> unit
(** ["n=… p50=… p95=… p99=… max=…"] with [fmt_ns] units. *)
