(** Causal spans across the TC/DC boundary.

    Each TC-originated operation carries a trace id in its wire frame
    header (inside the checksummed region — a corrupted id fails frame
    validation and the frame is dropped, so a span is never
    misattributed).  TC, transport (both channels), DC and WAL record
    span events — dispatch, xmit, recv, apply, skip (idempotence),
    force, ack, resend, drop — into one process-wide bounded ring.

    The ring is global so components record without threading a handle;
    a test or chaos cycle brackets its run with [clear]/[set_enabled].
    While disabled, [record] is a single boolean load and [fresh_tid]
    returns 0 (frames then carry the reserved "untraced" id). *)

type event = {
  e_tid : int;  (** 0 = untraced (control traffic, WAL forces) *)
  e_seq : int;  (** causal order within the process *)
  e_t : float;  (** wall clock, seconds *)
  e_comp : string;  (** recording component: "tc", "transport", "dc", … *)
  e_ev : string;
  e_attrs : (string * string) list;
}

val enabled : unit -> bool

val set_enabled : bool -> unit

val clear : unit -> unit
(** Drop all events and restart trace-id/sequence numbering. *)

val set_capacity : int -> unit
(** Resize (and clear) the ring.  Default 65536 events. *)

val capacity : unit -> int

val fresh_tid : unit -> int
(** A new non-zero trace id, or 0 while tracing is disabled.  Wraps at
    32 bits — the id's width in the frame header. *)

val record :
  tid:int -> comp:string -> ev:string -> (string * string) list -> unit

val events : unit -> event list
(** Ring contents, oldest first. *)

val recorded : unit -> int
(** Total events recorded since [clear] (including overwritten ones). *)

val dropped : unit -> int
(** Events lost to ring wrap-around since [clear]. *)

val to_jsonl : unit -> string
(** One JSON object per line:
    [{"tid":…,"seq":…,"t":…,"comp":"…","ev":"…","attrs":{…}}].
    Parsed back by {!Analyzer.of_jsonl}. *)
