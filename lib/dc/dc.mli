(** The Data Component.

    A DC is a server for logical, record-oriented requests from one or
    more TCs (Section 4.1.2).  It knows nothing about transactions: it
    makes each individual operation atomic and idempotent, organizes
    records in B-trees whose pagination it alone knows, manages the page
    cache, and runs its own system transactions (page splits and
    deletes) with their private DC-log.

    Idempotence is provided by abstract page LSNs ({!Ablsn}); causality
    (the unbundled WAL rule) by refusing to flush a page holding
    operations beyond the owning TC's reported end-of-stable-log;
    contract termination by the checkpoint interaction.  Partial-failure
    handling follows Section 5.3: on a DC crash, {!recover} rebuilds
    well-formed structures from stable state and the DC-log *before* any
    TC redo arrives; on a TC crash, [Restart_begin] resets exactly the
    cache pages holding that TC's lost operations — record-granular on
    pages shared between TCs (Section 6.1.2). *)

(** How abstract LSNs are made stable atomically with a page flush
    (the three page-sync options of Section 5.1.2). *)
type sync_policy =
  | Stall_until_lwm
      (** option 1: only flush once the low-water mark covers every
          included LSN, so a single LSN suffices on the page *)
  | Full_ablsn
      (** option 2: serialize the whole abstract LSN into the page *)
  | Bounded of int
      (** option 3: flush once the {LSNin} set is no bigger than [k] *)

(** Reaction to a TC failure (Section 5.3.2). *)
type tc_reset_mode =
  | Selective  (** reset only the affected pages/records *)
  | Complete  (** "draconian": treat it as a complete DC failure *)

type config = {
  page_capacity : int;
  cache_pages : int;
  sync_policy : sync_policy;
  tc_reset_mode : tc_reset_mode;
  debug_checks : bool;
      (** verify tree well-formedness after recovery steps *)
}

val default_config : config

type t

val create : ?counters:Untx_util.Instrument.t -> config -> t

val config : t -> config

val set_identity : t -> part:int -> unit
(** Assign the DC its partition id in the deployment (default 0).
    {!perform} rejects requests stamped for a different partition with
    [Failed "misrouted..."] and bumps ["dc.misrouted"], leaving state
    untouched — a routing disagreement must surface, not fork data. *)

val part : t -> int

val create_table : t -> name:string -> versioned:bool -> unit
(** Register a table (idempotent).  Versioned tables maintain
    before-versions for multi-TC read-committed sharing (Section 6.2.2)
    and version-based undo. *)

val seal_table : t -> name:string -> unit
(** Make the table read-only (Section 6.2.1): every TC may then read it
    lock-free; all writes are rejected.  Durable. *)

val table_names : t -> string list

val install_record :
  t -> table:string -> key:string -> Stored_record.t -> unit
(** Bootstrap backdoor: install a fully materialized record straight
    into the table's tree, bypassing the wire path.  No LSN is consumed
    and no abstract-LSN state is touched — correct only for building a
    {e fresh} standby from a layer store's {!Untx_layer} state, where a
    subsequent watermark adoption claims the whole installed prefix as
    covered.  Raises [Invalid_argument] for unknown tables. *)

val set_history_read :
  t -> (table:string -> key:string -> at:Untx_util.Lsn.t -> string option) -> unit
(** Install the versioned-read hook: the DC keeps only the newest record
    version, so point-in-time reads are answered by whoever retains
    history (a layer store's [reconstruct]). *)

val read_as_of :
  t -> table:string -> key:string -> at:Untx_util.Lsn.t -> string option
(** The record's visible value as of the given LSN, answered through the
    {!set_history_read} hook (counted as ["dc.history_reads"]).  Raises
    [Invalid_argument] when no hook is installed. *)

val perform : t -> Untx_msg.Wire.request -> Untx_msg.Wire.reply
(** Execute one logical operation, idempotently: a resent request whose
    effect the target pages already contain is absorbed and answered
    from the result memo. *)

val control : t -> Untx_msg.Wire.control -> Untx_msg.Wire.control_reply
(** Apply one control message directly.  Tests drive this; the kernel
    delivers control traffic as frames through
    {!handle_control_frame}, which adds the idempotence/ordering
    layer. *)

val handle_request_frame :
  ?expect:Untx_util.Tc_id.t -> t -> string -> string option
(** Transport endpoint for the data channel: decode a request frame,
    {!perform} it, return the encoded reply frame.  An undecodable frame
    is dropped (counted as ["dc.bad_frames"]) — indistinguishable from
    loss, so the TC's resend carries it.

    [expect] is the link's owning TC (deployments wire one transport per
    (TC, DC) pair): a frame stamped with a different [tc] is refused
    with a [Failed] reply and counted as ["dc.misattributed"] — applying
    it would charge the operation to another TC's idempotence state. *)

val handle_control_frame :
  ?expect:Untx_util.Tc_id.t -> t -> string -> string option
(** Transport endpoint for the control channel.  Enforces the control
    contract of Section 4.2 on the per-TC session table: frames from a
    dead epoch are discarded; duplicates are absorbed and re-answered
    from a reply memo (["dc.control_dups_absorbed"]); frames arriving
    ahead of their sequence turn are buffered (["dc.control_buffered"])
    until the TC's resend fills the gap; in-turn frames are applied via
    {!control} and acknowledged.  [None] means no reply travels back —
    the TC's backoff resend recovers.

    [expect] as in {!handle_request_frame}: a control frame speaking for
    another TC is dropped (counted as ["dc.misattributed"]) rather than
    allowed to touch a session its owner never sees. *)

val crash : t -> unit
(** Lose all volatile state: page cache, in-memory abstract LSNs, result
    memo, unforced DC-log tail. *)

val recover : t -> unit
(** Rebuild from stable state: reload the catalog, replay the DC-log so
    every index is well-formed (system transactions execute here, out of
    their original order relative to TC operations), and verify
    structures.  Must complete before the TC starts redo (Section 4.2,
    Recovery). *)

val flush_all : t -> unit
(** Force the DC-log, then flush every dirty page the policy permits. *)

val self_checkpoint : t -> bool
(** Try to make the whole cache stable and, if fully successful, write
    the master catalog and truncate the DC-log.  [false] if some page
    could not be flushed yet. *)

(** {2 Introspection (tests, benches, experiment harness)} *)

val check : t -> (unit, string) result
(** Well-formedness of every table's index. *)

val dump_table : t -> string -> (string * Stored_record.t) list
(** All records of a table in key order (including tombstones). *)

val table_root : t -> string -> Untx_storage.Page_id.t

val table_pages : t -> string -> Untx_storage.Page_id.t list

val cache : t -> Untx_storage.Cache.t

val disk : t -> Untx_storage.Disk.t

val dc_log_records : t -> int

val iter_dc_log :
  t -> (Untx_util.Lsn.t -> Smo_record.t -> unit) -> unit
(** Visit every DC-log record, stable then volatile (diagnostics). *)

val dc_log_bytes : t -> int

val splits : t -> int

val consolidations : t -> int

val dup_absorbed : t -> int
(** Requests answered purely by the idempotence test. *)

val eosl_of : t -> Untx_util.Tc_id.t -> Untx_util.Lsn.t
(** The end-of-stable-log this DC currently believes for one TC
    ({!Untx_util.Lsn.zero} before any watermark arrived).  Watermark
    state is keyed per TC — deployment audits check each TC's claims
    independently. *)

val lwm_of : t -> Untx_util.Tc_id.t -> Untx_util.Lsn.t
(** The low-water mark this DC currently believes for one TC (zero
    before any watermark arrived).  Always at or below that TC's
    {!eosl_of}. *)

val suggested_rssp :
  t -> tc:Untx_util.Tc_id.t -> Untx_util.Lsn.t
(** The redo-scan start point this DC could grant the TC right now
    without any further flushing — proactive contract termination
    (Section 4.2.1).  A checkpoint request at or below it succeeds
    without I/O. *)

val take_escalation : t -> bool
(** Whether the last TC-failure reset escalated to a complete DC
    recovery (draconian mode, or a selective reset that found lost
    operations baked into every recoverable image of a page).  Reading
    clears the flag.  Deployments use this to drive redo from the other
    TCs. *)

val pages_dropped : t -> int
(** Pages dropped whole by a TC-failure reset. *)

val records_reset : t -> int
(** Records individually reverted by a multi-TC page reset. *)

val page_meta_of : t -> Untx_storage.Page_id.t -> Page_meta.t
(** Current (volatile) recovery metadata of a page, for tests. *)
