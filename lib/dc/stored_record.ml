module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn
module Codec = Untx_util.Codec

type before = Absent | Null_before | Value_before of string

type t = {
  value : string;
  deleted : bool;
  before : before;
  writer : Tc_id.t;
  wlsn : Lsn.t;
}

let plain ~writer ~wlsn value =
  { value; deleted = false; before = Absent; writer; wlsn }

let current t = if t.deleted then None else Some t.value

let committed t =
  match t.before with
  | Absent -> current t
  | Null_before -> None
  | Value_before v -> Some v

let encode t =
  let before_tag, before_val =
    match t.before with
    | Absent -> ("a", "")
    | Null_before -> ("n", "")
    | Value_before v -> ("v", v)
  in
  Codec.encode
    [
      t.value;
      (if t.deleted then "1" else "0");
      before_tag;
      before_val;
      string_of_int (Tc_id.to_int t.writer);
      string_of_int (Lsn.to_int t.wlsn);
    ]

let decode s =
  match Codec.decode s with
  | [ value; deleted; before_tag; before_val; writer; wlsn ] ->
    let before =
      match before_tag with
      | "a" -> Absent
      | "n" -> Null_before
      | "v" -> Value_before before_val
      | _ -> invalid_arg "Stored_record.decode: bad before tag"
    in
    {
      value;
      deleted = String.equal deleted "1";
      before;
      writer = Tc_id.of_int (Codec.decode_int writer);
      wlsn = Lsn.of_int (Codec.decode_int wlsn);
    }
  | _ -> invalid_arg "Stored_record.decode: bad field count"

let encoded_size t = String.length (encode t)
