(** Abstract page LSNs (paper Section 5.1.2).

    Because the TC assigns LSNs before page access order is decided,
    operations can reach a page out of LSN order.  The classical
    idempotence test [opLSN <= pageLSN] then lies.  An abstract LSN
    captures exactly which operations' effects a page contains:

    [abLSN = <LSNlw, {LSNin}>]

    where no operation with LSN <= LSNlw needs re-execution, and
    {LSNin} are the LSNs above LSNlw whose effects are also present.
    The generalized test is:

    [lsn <= abLSN  iff  lsn <= LSNlw  or  lsn in {LSNin}] *)

type t

val empty : t
(** No operations applied. *)

val of_lw : Untx_util.Lsn.t -> t

val lw : t -> Untx_util.Lsn.t

val ins : t -> Untx_util.Lsn.Set.t

val ins_count : t -> int

val included : Untx_util.Lsn.t -> t -> bool
(** The generalized [<=] test: redo is not required. *)

val add : Untx_util.Lsn.t -> t -> t
(** Record that the operation's effect is now in the page. *)

val advance : lwm:Untx_util.Lsn.t -> t -> t
(** Apply a TC-supplied low-water mark: every operation <= [lwm] has
    been performed wherever it applies, so [lw] may rise to it and
    covered members of {LSNin} are discarded. *)

val truncate : upto:Untx_util.Lsn.t -> t -> t
(** Forget every claim above [upto] — applied when a failed TC's page
    state is rewound to its stable log (Section 5.3.2): operations
    beyond it were lost and their effects subtracted, so the abstract
    LSN must stop vouching for them. *)

val merge : t -> t -> t
(** abLSN for a page consolidation: the "maximum" of the two pages'
    abstract LSNs (Section 5.2.2, page deletes). *)

val max_lsn : t -> Untx_util.Lsn.t
(** The largest LSN the abstract LSN mentions — used to find pages whose
    state includes operations beyond a failed TC's stable log
    (Section 5.3.2). *)

val equal : t -> t -> bool

val encode : t -> string

val decode : string -> t
(** Raises [Invalid_argument] on garbage. *)

val encoded_size : t -> int

val pp : Format.formatter -> t -> unit
