module Lsn = Untx_util.Lsn
module Codec = Untx_util.Codec

(* Invariant: every member of [ins] is strictly greater than [lw]. *)
type t = { lw : Lsn.t; ins : Lsn.Set.t }

let empty = { lw = Lsn.zero; ins = Lsn.Set.empty }

let of_lw lw = { lw; ins = Lsn.Set.empty }

let lw t = t.lw

let ins t = t.ins

let ins_count t = Lsn.Set.cardinal t.ins

let included lsn t = Lsn.(lsn <= t.lw) || Lsn.Set.mem lsn t.ins

let add lsn t =
  if Lsn.(lsn <= t.lw) then t else { t with ins = Lsn.Set.add lsn t.ins }

let advance ~lwm t =
  if Lsn.(lwm <= t.lw) then t
  else { lw = lwm; ins = Lsn.Set.filter (fun l -> Lsn.(l > lwm)) t.ins }

let truncate ~upto t =
  {
    lw = Lsn.min t.lw upto;
    ins = Lsn.Set.filter (fun l -> Lsn.(l <= upto)) t.ins;
  }

let merge a b =
  let lw = Lsn.max a.lw b.lw in
  let ins =
    Lsn.Set.filter (fun l -> Lsn.(l > lw)) (Lsn.Set.union a.ins b.ins)
  in
  { lw; ins }

let max_lsn t =
  match Lsn.Set.max_elt_opt t.ins with
  | Some m -> m (* invariant: m > lw *)
  | None -> t.lw

let equal a b = Lsn.equal a.lw b.lw && Lsn.Set.equal a.ins b.ins

let encode t =
  Codec.encode
    (string_of_int (Lsn.to_int t.lw)
    :: List.map
         (fun l -> string_of_int (Lsn.to_int l))
         (Lsn.Set.elements t.ins))

let decode s =
  match Codec.decode s with
  | [] -> invalid_arg "Ablsn.decode: empty"
  | lw :: ins ->
    {
      lw = Lsn.of_int (Codec.decode_int lw);
      ins =
        List.fold_left
          (fun acc l -> Lsn.Set.add (Lsn.of_int (Codec.decode_int l)) acc)
          Lsn.Set.empty ins;
    }

let encoded_size t = String.length (encode t)

let pp ppf t =
  Format.fprintf ppf "<lw=%a,{%a}>" Lsn.pp t.lw
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Lsn.pp)
    (Lsn.Set.elements t.ins)
