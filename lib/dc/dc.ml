module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Codec = Untx_util.Codec
module Page = Untx_storage.Page
module Page_id = Untx_storage.Page_id
module Disk = Untx_storage.Disk
module Cache = Untx_storage.Cache
module Wal = Untx_wal.Wal
module Btree = Untx_btree.Btree
module Fault = Untx_fault.Fault
module Op = Untx_msg.Op
module Wire = Untx_msg.Wire
module Session = Untx_msg.Session

type sync_policy = Stall_until_lwm | Full_ablsn | Bounded of int

type tc_reset_mode = Selective | Complete

type config = {
  page_capacity : int;
  cache_pages : int;
  sync_policy : sync_policy;
  tc_reset_mode : tc_reset_mode;
  debug_checks : bool;
}

let default_config =
  {
    page_capacity = 512;
    cache_pages = 256;
    sync_policy = Full_ablsn;
    tc_reset_mode = Selective;
    debug_checks = false;
  }

(* Volatile per-page recovery state.  Kept beside the page during normal
   execution (paper: "we do not need to keep abLSN in the page itself")
   and serialized into the page's metadata blob at page-sync time. *)
type pstate = {
  mutable dlsn : Lsn.t;
  mutable ablsns : Ablsn.t Tc_id.Map.t;
  mutable pending : Lsn.Set.t Tc_id.Map.t;
      (* operation LSNs applied since the last flush; bounds causality *)
}

type table = {
  t_name : string;
  versioned : bool;
  mutable sealed : bool; (* read-only sharing, Section 6.2.1 *)
  mutable tree : Btree.t;
}

(* The control channel's idempotence state, one session per TC: control
   messages arrive over the same lossy transport as data operations, so
   the DC must absorb duplicates and reorderings here too.  Control
   messages are order-sensitive (a Restart_begin must not overtake the
   watermarks that preceded it), so unlike data ops they are applied
   strictly in sequence: a frame arriving ahead of its turn is buffered
   until the TC's resend of the gap fills it in.  The contract itself —
   epoch adoption, in-order apply, duplicate replay from a bounded memo
   — is {!Session.Receiver}, shared with the replication channel. *)
type ctl_session = (Wire.control, Wire.control_reply) Session.Receiver.t

type t = {
  cfg : config;
  counters : Instrument.t;
  disk : Disk.t;
  cache : Cache.t;
  dc_log : Smo_record.t Wal.t;
  tables : (string, table) Hashtbl.t;
  states : pstate Page_id.Tbl.t;
  memo : (int * int, Wire.reply) Hashtbl.t; (* (tc, lsn) -> original reply *)
  ctl_sessions : (int, ctl_session) Hashtbl.t; (* keyed by Tc_id.to_int *)
  mutable eosl : Lsn.t Tc_id.Map.t;
  mutable lwm : Lsn.t Tc_id.Map.t;
  current_table : string ref; (* table whose tree is being operated on *)
  mutable dup_absorbed : int;
  mutable pages_dropped : int;
  mutable records_reset : int;
  mutable total_splits : int;
  mutable total_consolidations : int;
  mutable fence_depth : int;
      (* active restart-redo windows; page deletes deferred while > 0 *)
  mutable escalated : bool;
      (* a selective TC reset had to fall back to full DC recovery *)
  mutable part : int;
      (* partition id in the deployment; requests stamped for another
         partition are rejected instead of applied *)
  mutable h_apply_part : string;
      (* per-partition apply histogram name, rebuilt on set_identity *)
  mutable history_read :
    (table:string -> key:string -> at:Lsn.t -> string option) option;
      (* versioned-read hook: a layer store answers point-in-time
         lookups below the current state; the DC itself keeps only the
         newest record version *)
}

let config t = t.cfg

let set_identity t ~part =
  t.part <- part;
  t.h_apply_part <- "dc.apply_ns.p" ^ string_of_int part

let part t = t.part

(* ------------------------------------------------------------------ *)
(* Per-page state                                                      *)

let fresh_state meta =
  {
    dlsn = meta.Page_meta.dlsn;
    ablsns = meta.Page_meta.ablsns;
    pending = Tc_id.Map.empty;
  }

let state_of t page =
  let pid = Page.id page in
  match Page_id.Tbl.find_opt t.states pid with
  | Some st -> st
  | None ->
    let st = fresh_state (Page_meta.decode (Page.meta page)) in
    Page_id.Tbl.add t.states pid st;
    st

let ablsn_of st tc =
  match Tc_id.Map.find_opt tc st.ablsns with
  | Some ab -> ab
  | None -> Ablsn.empty

let pending_of st tc =
  match Tc_id.Map.find_opt tc st.pending with
  | Some s -> s
  | None -> Lsn.Set.empty

let lwm_of t tc =
  match Tc_id.Map.find_opt tc t.lwm with Some l -> l | None -> Lsn.zero

let eosl_of t tc =
  match Tc_id.Map.find_opt tc t.eosl with Some l -> l | None -> Lsn.zero

let record_applied t page tc lsn =
  let st = state_of t page in
  st.ablsns <- Tc_id.Map.add tc (Ablsn.add lsn (ablsn_of st tc)) st.ablsns;
  st.pending <-
    Tc_id.Map.add tc (Lsn.Set.add lsn (pending_of st tc)) st.pending

let advance_state_ablsns t st =
  st.ablsns <-
    Tc_id.Map.mapi (fun tc ab -> Ablsn.advance ~lwm:(lwm_of t tc) ab) st.ablsns

(* ------------------------------------------------------------------ *)
(* Flush policy: causality + page sync                                 *)

let policy_allows t st =
  match t.cfg.sync_policy with
  | Full_ablsn -> true
  | Stall_until_lwm ->
    Tc_id.Map.for_all (fun _ ab -> Ablsn.ins_count ab = 0) st.ablsns
  | Bounded k ->
    Tc_id.Map.for_all (fun _ ab -> Ablsn.ins_count ab <= k) st.ablsns

let can_flush t page =
  let st = state_of t page in
  advance_state_ablsns t st;
  Lsn.(st.dlsn <= Wal.stable_lsn t.dc_log)
  && Tc_id.Map.for_all
       (fun tc pend ->
         match Lsn.Set.max_elt_opt pend with
         | None -> true
         | Some m -> Lsn.(m <= eosl_of t tc))
       st.pending
  && policy_allows t st

let prepare_flush t page =
  let st = state_of t page in
  advance_state_ablsns t st;
  let meta = { Page_meta.dlsn = st.dlsn; ablsns = st.ablsns } in
  let encoded = Page_meta.encode meta in
  Page.set_meta page encoded;
  Instrument.bump_by t.counters "dc.meta_bytes_flushed" (String.length encoded);
  st.pending <- Tc_id.Map.empty

(* ------------------------------------------------------------------ *)
(* System transactions: B-tree hooks writing the DC-log                *)

let p_split_mid = Fault.declare "dc.smo.split.mid"

let p_consolidate_before_force = Fault.declare "dc.smo.consolidate.before_force"

let p_checkpoint_mid = Fault.declare "dc.checkpoint.mid"

let ablsns_image t page = (state_of t page).ablsns

let on_split t (ev : Btree.split_event) =
  let table = !(t.current_table) in
  let tbl = Hashtbl.find t.tables table in
  let old_st = state_of t ev.old_page in
  (* The new page inherits the old page's abstract LSNs: its records'
     operations are exactly summarized by them (Section 5.2.2, page
     splits).  Pending sets are copied to both halves — conservative for
     causality, never wrong. *)
  let new_st =
    { dlsn = Lsn.zero; ablsns = old_st.ablsns; pending = old_st.pending }
  in
  Page_id.Tbl.replace t.states (Page.id ev.new_page) new_st;
  let parent_st = state_of t ev.parent in
  let record =
    Smo_record.Split
      {
        table;
        level = ev.level;
        old_pid = Page.id ev.old_page;
        split_key = ev.split_key;
        new_image =
          Smo_record.image_of_page ev.new_page ~ablsns:new_st.ablsns;
        parent_pid = Page.id ev.parent;
        sep_key = ev.split_key;
        new_root =
          (if ev.new_root then
             Some
               (Smo_record.image_of_page ev.parent
                  ~ablsns:(ablsns_image t ev.parent))
           else None);
        root = Btree.root tbl.tree;
      }
  in
  let dlsn = Wal.append t.dc_log record in
  (* Stamp before anything can raise: the new dlsn is volatile, so the
     stamp pins all three mutated pages in the cache (can_flush requires
     dlsn <= stable) until the record is forced.  Stamping after the
     force would leave a window where an eviction flushes a mutated page
     under its old stable dlsn — a torn SMO on disk that replay cannot
     repair because the record never survived. *)
  old_st.dlsn <- dlsn;
  new_st.dlsn <- dlsn;
  parent_st.dlsn <- dlsn;
  Fault.hit p_split_mid;
  t.total_splits <- t.total_splits + 1;
  Instrument.bump t.counters "dc.smo_splits"

let on_consolidate t (ev : Btree.consolidate_event) =
  let table = !(t.current_table) in
  let tbl = Hashtbl.find t.tables table in
  let surv_st = state_of t ev.survivor in
  let freed_pid = Page.id ev.freed_page in
  let freed_st =
    match Page_id.Tbl.find_opt t.states freed_pid with
    | Some st -> st
    | None -> fresh_state (Page_meta.decode (Page.meta ev.freed_page))
  in
  (* Merged ("maximum") abstract LSNs pin the delete's position relative
     to the TC operations already applied on either page. *)
  surv_st.ablsns <-
    Tc_id.Map.merge
      (fun _ a b ->
        match (a, b) with
        | Some a, Some b -> Some (Ablsn.merge a b)
        | (Some _ as one), None | None, (Some _ as one) -> one
        | None, None -> None)
      surv_st.ablsns freed_st.ablsns;
  surv_st.pending <-
    Tc_id.Map.merge
      (fun _ a b ->
        match (a, b) with
        | Some a, Some b -> Some (Lsn.Set.union a b)
        | (Some _ as one), None | None, (Some _ as one) -> one
        | None, None -> None)
      surv_st.pending freed_st.pending;
  let parent_st = state_of t ev.parent in
  let record =
    Smo_record.Consolidate
      {
        table;
        survivor_image =
          Smo_record.image_of_page ev.survivor ~ablsns:surv_st.ablsns;
        freed_pid;
        parent_pid = Page.id ev.parent;
        removed_sep = ev.removed_sep;
        new_root = ev.root_collapsed_to;
        root = Btree.root tbl.tree;
      }
  in
  let dlsn = Wal.append t.dc_log record in
  (* Stamp before the force: the volatile dlsn pins the mutated
     survivor and parent in the cache (can_flush requires
     dlsn <= stable), so a crash on either side of the force can never
     find a half-consolidated page flushed under its old dlsn. *)
  surv_st.dlsn <- dlsn;
  parent_st.dlsn <- dlsn;
  (* The B-tree frees the victim's stable image right after this hook
     returns, so the consolidation must be durable first. *)
  Fault.hit p_consolidate_before_force;
  Wal.force t.dc_log;
  Page_id.Tbl.remove t.states freed_pid;
  t.total_consolidations <- t.total_consolidations + 1;
  Instrument.bump t.counters "dc.smo_consolidations"

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let hooks_for t =
  {
    Btree.on_split = (fun ev -> on_split t ev);
    on_consolidate = (fun ev -> on_consolidate t ev);
  }

let create ?(counters = Instrument.global) cfg =
  let disk = Disk.create ~counters () in
  let cache = Cache.create ~counters ~disk ~capacity:cfg.cache_pages () in
  let t =
    {
      cfg;
      counters;
      disk;
      cache;
      dc_log = Wal.create ~counters ~label:"wal.dc" ~size:Smo_record.size ();
      tables = Hashtbl.create 8;
      states = Page_id.Tbl.create 256;
      memo = Hashtbl.create 1024;
      ctl_sessions = Hashtbl.create 4;
      eosl = Tc_id.Map.empty;
      lwm = Tc_id.Map.empty;
      current_table = ref "";
      dup_absorbed = 0;
      pages_dropped = 0;
      records_reset = 0;
      total_splits = 0;
      total_consolidations = 0;
      fence_depth = 0;
      escalated = false;
      part = 0;
      h_apply_part = "dc.apply_ns.p0";
      history_read = None;
    }
  in
  Cache.set_policy cache
    ~can_flush:(fun page -> can_flush t page)
    ~prepare_flush:(fun page -> prepare_flush t page);
  t

let write_master t =
  let fields =
    Hashtbl.fold
      (fun _ tbl acc ->
        tbl.t_name
        :: (if tbl.versioned then "1" else "0")
        :: (if tbl.sealed then "1" else "0")
        :: string_of_int (Page_id.to_int (Btree.root tbl.tree))
        :: acc)
      t.tables []
  in
  Disk.set_master t.disk (Codec.encode fields)

let read_master t =
  match Disk.master t.disk with
  | None -> []
  | Some blob ->
    let rec entries acc = function
      | [] -> List.rev acc
      | name :: versioned :: sealed :: root :: rest ->
        entries
          (( name,
             String.equal versioned "1",
             String.equal sealed "1",
             Page_id.of_int (Codec.decode_int root) )
          :: acc)
          rest
      | _ -> invalid_arg "Dc: corrupt master record"
    in
    entries [] (Codec.decode blob)

let create_table t ~name ~versioned =
  if not (Hashtbl.mem t.tables name) then begin
    let tbl = { t_name = name; versioned; sealed = false; tree = Obj.magic () } in
    Hashtbl.add t.tables name tbl;
    t.current_table := name;
    let tree =
      Btree.create ~cache:t.cache ~name ~page_capacity:t.cfg.page_capacity
        ~hooks:(hooks_for t)
    in
    tbl.tree <- tree;
    ignore
      (Wal.append t.dc_log
         (Smo_record.Create_table { table = name; versioned;
                                    root = Btree.root tree }));
    Wal.force t.dc_log;
    write_master t
  end

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Some tbl
  | None -> None

(* ------------------------------------------------------------------ *)
(* Operation execution                                                 *)

let decode_cell = Stored_record.decode

let find_record tree key = Option.map decode_cell (Btree.find tree key)

let visible mode record =
  match mode with
  | Op.Own | Op.Dirty -> Stored_record.current record
  | Op.Committed -> Stored_record.committed record

let memo_key tc lsn = (Tc_id.to_int tc, Lsn.to_int lsn)

let memoize t (req : Wire.request) reply =
  Hashtbl.replace t.memo (memo_key req.tc req.lsn) reply

let memoized t (req : Wire.request) =
  match Hashtbl.find_opt t.memo (memo_key req.tc req.lsn) with
  | Some reply -> reply
  | None ->
    (* The memo was truncated by contract termination; only writes whose
       effect is already present can reach here, so a bare ack serves. *)
    { Wire.tc = req.tc; lsn = req.lsn; result = Wire.Done; prior = None }

(* Mutations.  Each returns the operation result; structure
   modifications (splits, consolidations) happen inside the B-tree call
   under the installed hooks. *)

let do_insert tbl ~tc ~lsn ~key ~value prior =
  if tbl.sealed then Wire.Failed "table is sealed read-only"
  else
  match prior with
  | Some r when Stored_record.current r <> None ->
    Wire.Failed "duplicate key"
  | _ ->
    let record =
      if tbl.versioned then
        let before =
          match prior with
          | Some r -> r.Stored_record.before (* insert over a tombstone *)
          | None -> Stored_record.Null_before
        in
        { Stored_record.value; deleted = false; before; writer = tc;
          wlsn = lsn }
      else Stored_record.plain ~writer:tc ~wlsn:lsn value
    in
    Btree.set tbl.tree ~key ~data:(Stored_record.encode record);
    Wire.Done

let do_update tbl ~tc ~lsn ~key ~value prior =
  if tbl.sealed then Wire.Failed "table is sealed read-only"
  else
  match prior with
  | Some r when Stored_record.current r <> None ->
    let record =
      if tbl.versioned then
        let before =
          match r.Stored_record.before with
          | Stored_record.Absent -> Stored_record.Value_before r.value
          | kept -> kept
        in
        { Stored_record.value; deleted = false; before; writer = tc;
          wlsn = lsn }
      else Stored_record.plain ~writer:tc ~wlsn:lsn value
    in
    Btree.set tbl.tree ~key ~data:(Stored_record.encode record);
    Wire.Done
  | _ -> Wire.Failed "no such key"

let do_delete tbl ~tc ~lsn ~key prior =
  if tbl.sealed then Wire.Failed "table is sealed read-only"
  else
  match prior with
  | Some r when Stored_record.current r <> None ->
    if tbl.versioned then begin
      let before =
        match r.Stored_record.before with
        | Stored_record.Absent -> Stored_record.Value_before r.value
        | kept -> kept
      in
      let record =
        { Stored_record.value = r.value; deleted = true; before; writer = tc;
          wlsn = lsn }
      in
      Btree.set tbl.tree ~key ~data:(Stored_record.encode record)
    end
    else ignore (Btree.remove tbl.tree key);
    Wire.Done
  | _ -> Wire.Done (* deleting an absent record is a no-op *)

let commit_version tbl ~lsn key =
  match find_record tbl.tree key with
  | None -> ()
  | Some r ->
    if r.Stored_record.deleted then ignore (Btree.remove tbl.tree key)
    else if r.before <> Stored_record.Absent then
      Btree.set tbl.tree ~key
        ~data:
          (Stored_record.encode
             { r with before = Stored_record.Absent; wlsn = lsn })

let abort_version tbl ~lsn key =
  match find_record tbl.tree key with
  | None -> ()
  | Some r -> (
    match r.Stored_record.before with
    | Stored_record.Absent -> ()
    | Stored_record.Null_before -> ignore (Btree.remove tbl.tree key)
    | Stored_record.Value_before v ->
      Btree.set tbl.tree ~key
        ~data:
          (Stored_record.encode
             {
               Stored_record.value = v;
               deleted = false;
               before = Stored_record.Absent;
               writer = r.writer;
               wlsn = lsn;
             }))

(* Single-key write shell: idempotence test against the covering page's
   abstract LSN, execution, then marking the operation applied on the
   page that finally holds the key (it can move during splits). *)
let write_one t tbl (req : Wire.request) key mutate =
  let leaf = Btree.find_leaf tbl.tree key in
  let st = state_of t leaf in
  if Ablsn.included req.lsn (ablsn_of st req.tc) then begin
    t.dup_absorbed <- t.dup_absorbed + 1;
    Instrument.bump t.counters "dc.dup_absorbed";
    memoized t req
  end
  else begin
    (* E3 instrumentation: an arrival below the page's maximum known LSN
       is out of order; the classical [opLSN <= pageLSN] test would have
       wrongly treated it as already applied. *)
    if Lsn.(req.lsn < Ablsn.max_lsn (ablsn_of st req.tc)) then begin
      Instrument.bump t.counters "dc.out_of_order_arrivals";
      Instrument.bump t.counters "dc.classical_test_would_lie"
    end;
    let prior = find_record tbl.tree key in
    let result = mutate prior in
    let leaf' = Btree.find_leaf tbl.tree key in
    record_applied t leaf' req.tc req.lsn;
    Untx_storage.Cache.mark_dirty t.cache leaf';
    let reply =
      {
        Wire.tc = req.tc;
        lsn = req.lsn;
        result;
        prior = Option.bind prior Stored_record.current;
      }
    in
    memoize t req reply;
    reply
  end

(* Multi-key version housekeeping: per-page idempotence, decided for
   every key *before* any mutation — applying the first key would
   otherwise make the page's abstract LSN hide the remaining keys of the
   same request. *)
let write_many t tbl (req : Wire.request) keys mutate_key =
  let todo =
    List.filter
      (fun key ->
        let leaf = Btree.find_leaf tbl.tree key in
        let st = state_of t leaf in
        if Ablsn.included req.lsn (ablsn_of st req.tc) then begin
          t.dup_absorbed <- t.dup_absorbed + 1;
          Instrument.bump t.counters "dc.dup_absorbed";
          false
        end
        else true)
      keys
  in
  if todo <> [] && tbl.sealed then
    { Wire.tc = req.tc; lsn = req.lsn;
      result = Wire.Failed "table is sealed read-only"; prior = None }
  else begin
    List.iter mutate_key todo;
    List.iter
      (fun key ->
        let leaf = Btree.find_leaf tbl.tree key in
        record_applied t leaf req.tc req.lsn;
        Untx_storage.Cache.mark_dirty t.cache leaf)
      todo;
    { Wire.tc = req.tc; lsn = req.lsn; result = Wire.Done; prior = None }
  end

let do_scan tbl ~from_key ~limit ~mode =
  let acc = ref [] in
  let count = ref 0 in
  Btree.scan tbl.tree ~from:from_key (fun k data ->
      if !count >= limit then `Stop
      else
        match visible mode (decode_cell data) with
        | Some v ->
          acc := (k, v) :: !acc;
          incr count;
          `Continue
        | None -> `Continue);
  Wire.Pairs (List.rev !acc)

let do_probe tbl ~from_key ~limit =
  let acc = ref [] in
  let count = ref 0 in
  Btree.scan tbl.tree ~from:from_key (fun k _ ->
      if !count >= limit then `Stop
      else begin
        acc := k :: !acc;
        incr count;
        `Continue
      end);
  Wire.Next_keys (List.rev !acc)

let perform_unlatched t (req : Wire.request) =
  Instrument.bump t.counters "dc.requests";
  let fail msg =
    { Wire.tc = req.tc; lsn = req.lsn; result = Wire.Failed msg; prior = None }
  in
  let table_name = Op.table req.op in
  if req.part <> t.part then begin
    (* A frame for another partition: the TC's map and the deployment
       disagree.  Refuse without touching any state — applying it here
       would silently fork the record's home. *)
    Instrument.bump t.counters "dc.misrouted";
    fail
      (Printf.sprintf "misrouted: request for partition %d reached %d"
         req.part t.part)
  end
  else
  match find_table t table_name with
  | None -> fail ("unknown table " ^ table_name)
  | Some tbl -> (
    t.current_table := table_name;
    match req.op with
    | Op.Read { key; mode; _ } ->
      let value = Option.bind (find_record tbl.tree key) (visible mode) in
      { Wire.tc = req.tc; lsn = req.lsn; result = Wire.Value value; prior = None }
    | Op.Scan { from_key; limit; mode; _ } ->
      { Wire.tc = req.tc; lsn = req.lsn;
        result = do_scan tbl ~from_key ~limit ~mode;
        prior = None }
    | Op.Probe { from_key; limit; _ } ->
      { Wire.tc = req.tc; lsn = req.lsn;
        result = do_probe tbl ~from_key ~limit;
        prior = None }
    | Op.Insert { key; value; _ } ->
      write_one t tbl req key (do_insert tbl ~tc:req.tc ~lsn:req.lsn ~key ~value)
    | Op.Update { key; value; _ } ->
      write_one t tbl req key (do_update tbl ~tc:req.tc ~lsn:req.lsn ~key ~value)
    | Op.Delete { key; _ } ->
      write_one t tbl req key (do_delete tbl ~tc:req.tc ~lsn:req.lsn ~key)
    | Op.Commit_versions { keys; _ } ->
      write_many t tbl req keys (commit_version tbl ~lsn:req.lsn)
    | Op.Abort_versions { keys; _ } ->
      write_many t tbl req keys (abort_version tbl ~lsn:req.lsn))

(* Operation atomicity (Section 4.1.2): the whole logical operation runs
   with its pages latched — eviction deferred — so no page can reach
   stable storage with a half-applied operation or not-yet-stamped
   recovery metadata. *)
let perform t req =
  Cache.with_operation_latch t.cache (fun () -> perform_unlatched t req)

(* ------------------------------------------------------------------ *)
(* Flushing / checkpoint                                               *)

let flush_all t =
  Wal.force t.dc_log;
  Cache.flush_all t.cache

let self_checkpoint t =
  flush_all t;
  if Cache.dirty_pages t.cache = [] then begin
    write_master t;
    Wal.truncate t.dc_log (Lsn.next (Wal.stable_lsn t.dc_log));
    true
  end
  else false

(* Read-only sharing (Section 6.2.1): once sealed, a table accepts no
   further writes from any TC, so "it is possible for multiple TCs to
   share read-only data with each other without difficulty".  The flag
   is stable (master record). *)
let seal_table t ~name =
  match Hashtbl.find_opt t.tables name with
  | None -> invalid_arg ("Dc.seal_table: unknown table " ^ name)
  | Some tbl ->
    (* Sealing demands stability: unflushed effects could never be
       redone once writes are refused, so everything goes to disk (and
       the DC-log empties) first. *)
    if not (self_checkpoint t) then
      invalid_arg
        "Dc.seal_table: table has unflushable dirty pages (quiesce first)";
    tbl.sealed <- true;
    write_master t

(* Bootstrap backdoor: install a fully materialized record straight into
   the tree, bypassing the wire path.  No LSN is consumed and no
   abstract-LSN state is touched — the installed page's empty ablsns are
   exactly right, because the caller follows up with a watermark
   adoption claiming the whole installed prefix as covered-by-state. *)
let install_record t ~table ~key record =
  match find_table t table with
  | None -> invalid_arg ("Dc.install_record: unknown table " ^ table)
  | Some tbl ->
    Btree.set tbl.tree ~key ~data:(Stored_record.encode record);
    let leaf = Btree.find_leaf tbl.tree key in
    Cache.mark_dirty t.cache leaf;
    Instrument.bump t.counters "dc.installed_records"

let set_history_read t f = t.history_read <- Some f

let read_as_of t ~table ~key ~at =
  match t.history_read with
  | None ->
    invalid_arg "Dc.read_as_of: no history-read hook installed (layers off?)"
  | Some h ->
    Instrument.bump t.counters "dc.history_reads";
    h ~table ~key ~at

(* ------------------------------------------------------------------ *)
(* TC failure: cache reset (Section 5.3.2 / 6.1.2)                     *)

(* A leaf image logged by an SMO captures whole cells — including
   records whose TC-log coverage was still volatile when the image was
   taken.  After a TC failure such records are lost history: replaying
   the image verbatim would resurrect operations the TC can never
   resend.  Every complete restart on behalf of a failed TC logs a
   [Tc_restart] fence in the DC-log, so the subtraction is durable:
   during any replay, an image is subject to every fence logged after
   it, however long ago the restart itself happened. *)
type fence = { f_tc : Tc_id.t; f_stable : Lsn.t; f_dlsn : Lsn.t }

let fences_after fences dlsn =
  List.filter (fun f -> Lsn.(dlsn < f.f_dlsn)) fences

let collect_fences t =
  let fences = ref [] in
  let collect dlsn = function
    | Smo_record.Tc_restart { tc; stable_lsn } ->
      fences := { f_tc = tc; f_stable = stable_lsn; f_dlsn = dlsn } :: !fences
    | _ -> ()
  in
  Wal.iter_from t.dc_log Lsn.zero collect;
  Wal.iter_volatile t.dc_log collect;
  !fences

let image_tainted fences (img : Smo_record.page_image) =
  fences <> []
  && img.kind = Page.Leaf
  && List.exists
       (fun (_, data) ->
         let r = Stored_record.decode data in
         List.exists
           (fun f ->
             Tc_id.equal r.Stored_record.writer f.f_tc
             && Lsn.(r.Stored_record.wlsn > f.f_stable))
           fences)
       img.cells

exception Tainted_reset

(* Rebuild an affected page's reset state: its stable base (the disk
   image, which by causality holds nothing beyond the failed TC's stable
   log; or nothing, for a never-flushed page) with the DC-log's system
   transactions replayed on top under the usual dLSN test.  Without the
   replay, reverting to the raw disk image would undo structure
   modifications — resurrecting cells a split moved away and corrupting
   routing.  Any replayed image whose abstract LSN for the failed TC
   reaches past its stable log is tainted — it bakes in lost effects
   that cannot be subtracted — and forces escalation to a complete DC
   recovery.

   Soundness for never-flushed pages: such a page was created after the
   last granted checkpoint (a grant flushes every dirty page), so every
   operation below the redo scan start point in its key range is inside
   its creation image, and everything later is resent by redo. *)
let rebuild_page_from_stable t pid ~tc ~stable_lsn =
  let fences = collect_fences t in
  let base =
    match Disk.read t.disk pid with
    | Some page ->
      let meta = Page_meta.decode (Page.meta page) in
      Some (page, meta.Page_meta.ablsns, meta.Page_meta.dlsn)
    | None -> None
  in
  let found = ref base in
  let cur_dlsn () =
    match !found with Some (_, _, d) -> d | None -> Lsn.zero
  in
  let image_clean (img : Smo_record.page_image) =
    match Tc_id.Map.find_opt tc img.ablsns with
    | None -> true
    | Some ab -> Lsn.(Ablsn.max_lsn ab <= stable_lsn)
  in
  let install (img : Smo_record.page_image) dlsn =
    if Lsn.(dlsn > cur_dlsn ()) then begin
      (* Tainted w.r.t. this restart, or w.r.t. an earlier TC restart
         whose fence sits later in the log: either way the image bakes
         in lost effects this in-place rebuild cannot subtract. *)
      if
        (not (image_clean img))
        || image_tainted (fences_after fences dlsn) img
      then raise Tainted_reset;
      let page =
        Page.create ~id:pid ~kind:img.kind ~capacity:t.cfg.page_capacity
      in
      Page.replace_cells page img.cells;
      Page.set_next page img.next;
      found := Some (page, img.ablsns, dlsn)
    end
  in
  let visit dlsn = function
    | Smo_record.Create_table _ -> ()
    | Smo_record.Split { old_pid; split_key; new_image; new_root; _ } ->
      if Page_id.equal new_image.pid pid then install new_image dlsn;
      (match new_root with
      | Some img when Page_id.equal img.pid pid -> install img dlsn
      | _ -> ());
      if Page_id.equal old_pid pid && Lsn.(dlsn > cur_dlsn ()) then (
        match !found with
        | Some (page, ablsns, _) ->
          let doomed =
            List.filter_map
              (fun (k, _) ->
                if String.compare k split_key >= 0 then Some k else None)
              (Page.cells page)
          in
          List.iter (fun k -> ignore (Page.remove page k)) doomed;
          if Page.kind page = Page.Leaf then
            Page.set_next page (Some new_image.pid);
          found := Some (page, ablsns, dlsn)
        | None -> ())
    | Smo_record.Consolidate { survivor_image; freed_pid; _ } ->
      if Page_id.equal survivor_image.pid pid then
        install survivor_image dlsn;
      if Page_id.equal freed_pid pid && Lsn.(dlsn > cur_dlsn ()) then
        found := None
    | Smo_record.Tc_restart _ -> ()
  in
  Wal.iter_from t.dc_log Lsn.zero visit;
  Wal.iter_volatile t.dc_log visit;
  !found

let reset_page_for_tc t pid st ~tc ~stable_lsn =
  let multi = Tc_id.Map.cardinal st.ablsns > 1 in
  if not multi then begin
    (* All data on this page belongs to the failed TC: revert to the
       stable version wholesale.  Causality guarantees the disk image
       holds nothing beyond the TC's stable log.  A page that never
       reached the disk keeps its structure (sibling link, dLSN) but
       loses its records: redo from the scan start point refills it. *)
    (match rebuild_page_from_stable t pid ~tc ~stable_lsn with
    | Some (page, ablsns, dlsn) ->
      Cache.install t.cache page;
      Page_id.Tbl.replace t.states pid
        { dlsn; ablsns; pending = Tc_id.Map.empty }
    | None ->
      (* No stable base and no image anywhere: the table's original
         root, never split and never flushed — all its content is at or
         above the redo scan start point. *)
      (match Cache.cached t.cache pid with
      | Some page ->
        Page.clear page;
        Cache.mark_dirty t.cache page
      | None -> ());
      st.ablsns <- Tc_id.Map.empty;
      st.pending <- Tc_id.Map.empty);
    t.pages_dropped <- t.pages_dropped + 1;
    Instrument.bump t.counters "dc.pages_dropped"
  end
  else begin
    (* Shared page: replace only the failed TC's records from the disk
       version, leaving other TCs' (possibly unflushed) updates alone. *)
    match Cache.cached t.cache pid with
    | None -> ()
    | Some page ->
      let disk_page = Disk.read t.disk pid in
      let disk_meta =
        match disk_page with
        | Some p -> Page_meta.decode (Page.meta p)
        | None -> Page_meta.empty
      in
      let disk_cells =
        match disk_page with Some p -> Page.cells p | None -> []
      in
      let owned_cached =
        List.filter_map
          (fun (k, d) ->
            if Tc_id.equal (decode_cell d).Stored_record.writer tc then Some k
            else None)
          (Page.cells page)
      in
      let disk_assoc = disk_cells in
      let owned_disk =
        List.filter_map
          (fun (k, d) ->
            if Tc_id.equal (decode_cell d).Stored_record.writer tc then Some k
            else None)
          disk_cells
      in
      let keys =
        List.sort_uniq String.compare (owned_cached @ owned_disk)
      in
      List.iter
        (fun k ->
          t.records_reset <- t.records_reset + 1;
          match List.assoc_opt k disk_assoc with
          | Some d -> Page.set page ~key:k ~data:d
          | None -> ignore (Page.remove page k))
        keys;
      st.ablsns <- Tc_id.Map.add tc (Page_meta.ablsn disk_meta tc) st.ablsns;
      st.pending <- Tc_id.Map.remove tc st.pending;
      Cache.mark_dirty t.cache page;
      Instrument.bump t.counters "dc.pages_record_reset"
  end;
  ignore stable_lsn

let reset_for_tc t ~tc ~stable_lsn =
  (* Drop memoized results for operations that no longer exist. *)
  Hashtbl.iter
    (fun (mtc, mlsn) _ ->
      if mtc = Tc_id.to_int tc && Lsn.(of_int mlsn > stable_lsn) then
        Hashtbl.remove t.memo (mtc, mlsn))
    (Hashtbl.copy t.memo);
  let affected =
    Page_id.Tbl.fold
      (fun pid st acc ->
        match Cache.cached t.cache pid with
        | None -> acc
        | Some _ ->
          let ab = ablsn_of st tc in
          if Lsn.(Ablsn.max_lsn ab > stable_lsn) then (pid, st) :: acc
          else acc)
      t.states []
  in
  List.iter (fun (pid, st) -> reset_page_for_tc t pid st ~tc ~stable_lsn)
    affected

(* ------------------------------------------------------------------ *)
(* Crash / recovery                                                    *)

let apply_fence_gate t =
  let enabled = t.fence_depth = 0 in
  Hashtbl.iter
    (fun _ tbl -> Btree.set_consolidation_enabled tbl.tree enabled)
    t.tables

let enter_fence t =
  t.fence_depth <- t.fence_depth + 1;
  apply_fence_gate t

let exit_fence t =
  t.fence_depth <- Stdlib.max 0 (t.fence_depth - 1);
  apply_fence_gate t

let crash t =
  Cache.crash t.cache;
  Page_id.Tbl.reset t.states;
  Hashtbl.reset t.memo;
  Hashtbl.reset t.ctl_sessions;
  Wal.crash t.dc_log;
  t.eosl <- Tc_id.Map.empty;
  t.lwm <- Tc_id.Map.empty

let set_state t pid st = Page_id.Tbl.replace t.states pid st

let ensure_page t pid ~kind =
  match Cache.lookup t.cache pid with
  | Some page -> page
  | None ->
    (* The page was never flushed and its creating record is gone only
       if it is a table's original root (covered by the master catalog);
       rebuild it empty — TC redo will repopulate it. *)
    let page = Page.create ~id:pid ~kind ~capacity:t.cfg.page_capacity in
    Cache.install t.cache page;
    set_state t pid
      { dlsn = Lsn.zero; ablsns = Tc_id.Map.empty; pending = Tc_id.Map.empty };
    page

(* [reverted] replaces a tainted image's content with an older,
   consistent state of the same key range (the caller knows where it
   lives); structure (pid, kind, sibling link) still comes from the
   image.  Each fence truncates its failed TC's abstract LSN to that
   TC's stable log so it stops vouching for subtracted effects. *)
let install_image t ~fences ?reverted (img : Smo_record.page_image) dlsn =
  let newer_exists =
    match Cache.lookup t.cache img.pid with
    | None -> false
    | Some page ->
      let st = state_of t page in
      Lsn.(st.dlsn >= dlsn)
  in
  if not newer_exists then begin
    let cells, ablsns =
      match reverted with
      | Some (cells, ablsns) -> (cells, ablsns)
      | None -> (img.cells, img.ablsns)
    in
    let ablsns =
      List.fold_left
        (fun abs f ->
          Tc_id.Map.update f.f_tc
            (Option.map (Ablsn.truncate ~upto:f.f_stable))
            abs)
        ablsns fences
    in
    let page =
      Page.create ~id:img.pid ~kind:img.kind ~capacity:t.cfg.page_capacity
    in
    Page.replace_cells page cells;
    Page.set_next page img.next;
    Cache.install t.cache page;
    set_state t img.pid { dlsn; ablsns; pending = Tc_id.Map.empty }
  end

let apply_smo t ~fences dlsn record =
  (* Only fences logged after this record can subtract from it. *)
  let fences = fences_after fences dlsn in
  match record with
  | Smo_record.Tc_restart _ -> ()
  | Smo_record.Create_table { table; versioned; root } ->
    if not (Hashtbl.mem t.tables table) then begin
      let tbl =
        { t_name = table; versioned; sealed = false; tree = Obj.magic () }
      in
      Hashtbl.add t.tables table tbl;
      tbl.tree <-
        Btree.attach ~cache:t.cache ~name:table
          ~page_capacity:t.cfg.page_capacity ~hooks:(hooks_for t) ~root
    end;
    let tbl = Hashtbl.find t.tables table in
    ignore (ensure_page t (Btree.root tbl.tree) ~kind:Page.Leaf)
  | Smo_record.Split
      { table; level; old_pid; split_key; new_image; parent_pid; sep_key;
        new_root; root; _ } -> (
    match Hashtbl.find_opt t.tables table with
    | None -> () (* table dropped; nothing to redo *)
    | Some tbl ->
      let old_kind = if level = 0 then Page.Leaf else Page.Inner in
      let old_page = ensure_page t old_pid ~kind:old_kind in
      let old_st = state_of t old_page in
      (* Captured before the prune below: a tainted image is replaced by
         the old page's pre-split content for the moved key range, whose
         suffix the TC redo re-applies. *)
      let reverted =
        if image_tainted fences new_image then
          Some
            ( List.filter
                (fun (k, _) -> String.compare k split_key >= 0)
                (Page.cells old_page),
              old_st.ablsns )
        else None
      in
      if Lsn.(old_st.dlsn < dlsn) then begin
        let doomed =
          List.filter_map
            (fun (k, _) ->
              if String.compare k split_key >= 0 then Some k else None)
            (Page.cells old_page)
        in
        List.iter (fun k -> ignore (Page.remove old_page k)) doomed;
        if Page.kind old_page = Page.Leaf then
          Page.set_next old_page (Some new_image.pid);
        old_st.dlsn <- dlsn;
        Cache.mark_dirty t.cache old_page
      end;
      install_image t ~fences ?reverted new_image dlsn;
      (match new_root with
      | Some root_img -> install_image t ~fences root_img dlsn
      | None ->
        let parent = ensure_page t parent_pid ~kind:Page.Inner in
        let parent_st = state_of t parent in
        if Lsn.(parent_st.dlsn < dlsn) then begin
          Page.set parent ~key:sep_key ~data:(Btree.child_data new_image.pid);
          parent_st.dlsn <- dlsn;
          Cache.mark_dirty t.cache parent
        end);
      Btree.set_root tbl.tree root)
  | Smo_record.Consolidate
      { table; survivor_image; freed_pid; parent_pid; removed_sep; new_root;
        root } -> (
    match Hashtbl.find_opt t.tables table with
    | None -> ()
    | Some tbl ->
      (* A tainted survivor image is replaced by re-merging the two
         pages' current (consistent) replayed content. *)
      let reverted =
        if image_tainted fences survivor_image then begin
          let content pid =
            match Cache.lookup t.cache pid with
            | Some page -> (Page.cells page, (state_of t page).ablsns)
            | None -> ([], Tc_id.Map.empty)
          in
          let surv_cells, surv_ablsns = content survivor_image.pid in
          let vict_cells, vict_ablsns = content freed_pid in
          let merged =
            Tc_id.Map.merge
              (fun _ a b ->
                match (a, b) with
                | Some a, Some b -> Some (Ablsn.merge a b)
                | (Some _ as one), None | None, (Some _ as one) -> one
                | None, None -> None)
              surv_ablsns vict_ablsns
          in
          Some
            ( List.sort
                (fun (a, _) (b, _) -> String.compare a b)
                (surv_cells @ vict_cells),
              merged )
        end
        else None
      in
      install_image t ~fences ?reverted survivor_image dlsn;
      Cache.free_page t.cache freed_pid;
      Page_id.Tbl.remove t.states freed_pid;
      (match new_root with
      | Some _ ->
        Cache.free_page t.cache parent_pid;
        Page_id.Tbl.remove t.states parent_pid
      | None ->
        let parent = ensure_page t parent_pid ~kind:Page.Inner in
        let parent_st = state_of t parent in
        if Lsn.(parent_st.dlsn < dlsn) then begin
          ignore (Page.remove parent removed_sep);
          parent_st.dlsn <- dlsn;
          Cache.mark_dirty t.cache parent
        end);
      Btree.set_root tbl.tree root)

let check t =
  Hashtbl.fold
    (fun name tbl acc ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match Btree.check tbl.tree with
        | Ok () -> Ok ()
        | Error msg -> Error (name ^ ": " ^ msg)))
    t.tables (Ok ())

let recover_unlatched t =
  (* 1. Catalog from the master record. *)
  Hashtbl.reset t.tables;
  List.iter
    (fun (name, versioned, sealed, root) ->
      let tbl = { t_name = name; versioned; sealed; tree = Obj.magic () } in
      Hashtbl.add t.tables name tbl;
      tbl.tree <-
        Btree.attach ~cache:t.cache ~name ~page_capacity:t.cfg.page_capacity
          ~hooks:(hooks_for t) ~root)
    (read_master t);
  (* 2. Replay the DC-log: system transactions re-execute before any TC
     redo, out of their original order relative to TC operations.  The
     fences are gathered first — a [Tc_restart] strips images logged
     before it, so replay must know about it ahead of reaching them. *)
  let fences = collect_fences t in
  Wal.iter_from t.dc_log Lsn.zero (fun dlsn record ->
      apply_smo t ~fences dlsn record);
  (* 3. Tables created after the last master write are only in the log;
     make sure every catalogued root exists even if never flushed. *)
  Hashtbl.iter
    (fun _ tbl -> ignore (ensure_page t (Btree.root tbl.tree) ~kind:Page.Leaf))
    t.tables;
  apply_fence_gate t;
  if t.cfg.debug_checks then
    match check t with
    | Ok () -> ()
    | Error msg ->
      failwith ("Dc.recover: ill-formed index after replay: " ^ msg)

let recover t = Cache.with_operation_latch t.cache (fun () -> recover_unlatched t)

(* ------------------------------------------------------------------ *)
(* Control interface                                                   *)

let apply_eosl t tc eosl =
  t.eosl <- Tc_id.Map.add tc (Lsn.max eosl (eosl_of t tc)) t.eosl

let apply_lwm t tc lwm =
  t.lwm <- Tc_id.Map.add tc (Lsn.max lwm (lwm_of t tc)) t.lwm;
  Page_id.Tbl.iter (fun _ st -> advance_state_ablsns t st) t.states

let control t (ctl : Wire.control) =
  match ctl with
  | Wire.Watermarks { tc; eosl; lwm } ->
    apply_eosl t tc eosl;
    apply_lwm t tc lwm;
    Wal.force t.dc_log;
    Cache.enforce_capacity t.cache;
    Wire.Ack
  | Wire.End_of_stable_log { tc; eosl } ->
    apply_eosl t tc eosl;
    (* pages pinned by causality may have become flushable; forcing the
       DC-log first releases pages whose structure modifications were
       still volatile *)
    Wal.force t.dc_log;
    Cache.enforce_capacity t.cache;
    Wire.Ack
  | Wire.Low_water_mark { tc; lwm } ->
    apply_lwm t tc lwm;
    Wal.force t.dc_log;
    Cache.enforce_capacity t.cache;
    Wire.Ack
  | Wire.Checkpoint { tc; new_rssp } ->
    flush_all t;
    Fault.hit p_checkpoint_mid;
    let granted =
      List.for_all
        (fun pid ->
          match Page_id.Tbl.find_opt t.states pid with
          | None -> true
          | Some st -> (
            match Lsn.Set.min_elt_opt (pending_of st tc) with
            | None -> true
            | Some m -> Lsn.(m >= new_rssp)))
        (Cache.dirty_pages t.cache)
    in
    if granted then begin
      (* Contract terminated below the new RSSP: memoized results for
         those operations can never be legitimately resent. *)
      Hashtbl.iter
        (fun (mtc, mlsn) _ ->
          if mtc = Tc_id.to_int tc && Lsn.(of_int mlsn < new_rssp) then
            Hashtbl.remove t.memo (mtc, mlsn))
        (Hashtbl.copy t.memo);
      ignore (self_checkpoint t)
    end;
    Wire.Checkpoint_done { granted }
  | Wire.Redo_fence_begin _ ->
    enter_fence t;
    Wire.Ack
  | Wire.Redo_fence_end _ ->
    exit_fence t;
    Wire.Ack
  | Wire.Restart_begin { tc; stable_lsn } ->
    enter_fence t;
    (* The failed TC's watermarks are void: its old low-water mark may
       cover operations that were just reset (or lost with the log tail)
       and must not absorb the coming redo.  The end-of-stable-log is
       exactly the stable LSN it reported. *)
    t.lwm <- Tc_id.Map.remove tc t.lwm;
    t.eosl <- Tc_id.Map.add tc stable_lsn t.eosl;
    (* Turn the partial failure into a complete one.  The DC-log's page
       images may bake in operations beyond the failed TC's stable log;
       the fence logged here makes replay subtract them — now and in
       every later recovery, after this restart is long forgotten. *)
    let complete_restart () =
      t.escalated <- true;
      (* This restart is driven *by* a control message, not by this DC's
         own process dying: the control sessions (this one included —
         we are mid-application of its current seq) must survive, or
         every TC's later control frames would be seen as unfillable
         gaps.  TCs that must redo learn of the escalation through
         [take_escalation] and open fresh epochs then. *)
      let sessions =
        Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.ctl_sessions []
      in
      crash t;
      List.iter (fun (k, s) -> Hashtbl.replace t.ctl_sessions k s) sessions;
      ignore (Wal.append t.dc_log (Smo_record.Tc_restart { tc; stable_lsn }));
      Wal.force t.dc_log;
      recover_unlatched t
    in
    (match t.cfg.tc_reset_mode with
    | Selective -> (
      try Cache.with_operation_latch t.cache (fun () -> reset_for_tc t ~tc ~stable_lsn)
      with Tainted_reset ->
        (* A lost operation is baked into a recoverable image of some
           page: selective reset cannot subtract it in place.  Escalate
           to a complete DC recovery that strips the failed TC's
           unstable effects during image replay. *)
        Instrument.bump t.counters "dc.reset_escalations";
        complete_restart ())
    | Complete -> complete_restart ());
    Wire.Ack
  | Wire.Restart_end _ ->
    exit_fence t;
    Wire.Ack

(* ------------------------------------------------------------------ *)
(* Transport endpoints: the DC side of the serialized message plane    *)

(* An undecodable frame is dropped like a lost message: no reply, and
   the TC's resend carries it.  (The transport's checksum gate already
   rejects corruption; this guards against version or framing bugs.)

   [expect] is the link's owning TC: a deployment wires one transport
   per (TC, DC) pair, so a frame stamped with another TC's id on this
   link is a wiring bug — applying it would charge one TC's operation
   to another TC's idempotence state.  Like a misrouted partition id,
   it is refused loudly (Failed reply, counted) instead of applied. *)
let handle_request_frame ?expect t frame =
  match Wire.decode_request frame with
  | exception Invalid_argument _ ->
    Instrument.bump t.counters "dc.bad_frames";
    None
  | req
    when match expect with
         | Some tc -> not (Tc_id.equal req.Wire.tc tc)
         | None -> false ->
    Instrument.bump t.counters "dc.misattributed";
    let tid = if Trace.enabled () then Wire.frame_tid frame else 0 in
    Some
      (Wire.encode_reply ~tid
         {
           Wire.tc = req.Wire.tc;
           lsn = req.Wire.lsn;
           result =
             Wire.Failed
               (Format.asprintf "misattributed: request from %a on %a's link"
                  Tc_id.pp req.Wire.tc Tc_id.pp (Option.get expect));
           prior = None;
         })
  | req ->
    let tid = if Trace.enabled () then Wire.frame_tid frame else 0 in
    let t0 = Metrics.start t.counters in
    (* The idempotence table absorbs duplicates inside [perform]; the
       counter delta distinguishes a real apply from an absorbed one
       without threading the trace id through the write path. *)
    let dup_before = t.dup_absorbed in
    let reply = perform t req in
    Metrics.stop t.counters "dc.apply_ns" t0;
    Metrics.stop t.counters t.h_apply_part t0;
    if tid <> 0 then
      Trace.record ~tid ~comp:"dc"
        ~ev:(if t.dup_absorbed > dup_before then "skip" else "apply")
        [
          ("part", string_of_int t.part);
          ("lsn", Lsn.to_string req.Wire.lsn);
        ];
    Some (Wire.encode_reply ~tid reply)

let session t tc =
  let key = Tc_id.to_int tc in
  match Hashtbl.find_opt t.ctl_sessions key with
  | Some s -> s
  | None ->
    let s = Session.Receiver.create () in
    Hashtbl.add t.ctl_sessions key s;
    s

let handle_control_frame ?expect t frame =
  match Wire.decode_control frame with
  | exception Invalid_argument _ ->
    Instrument.bump t.counters "dc.bad_frames";
    None
  | m
    when match expect with
         | Some tc -> not (Tc_id.equal (Wire.control_tc m.Wire.c_ctl) tc)
         | None -> false ->
    (* A control frame speaking for another TC on this link: touching
       the named TC's session from here would let a wiring bug advance
       or stall a session its owner never sees.  Dropped (counted); the
       real sender's resend budget turns the silence into a loud
       timeout. *)
    Instrument.bump t.counters "dc.misattributed";
    None
  | m ->
    let tc = Wire.control_tc m.Wire.c_ctl in
    let s = session t tc in
    let reply seq r =
      Some
        (Wire.encode_control_reply
           { Wire.r_tc = tc; r_epoch = Session.Receiver.epoch s; r_seq = seq;
             r_reply = r })
    in
    (* [control] may run a complete restart mid-apply; the session
       record survives it (see [complete_restart]), so the receiver's
       bookkeeping lands on live state.  Duplicates are never re-applied
       — control messages are not all idempotent (a second Restart_begin
       would re-enter the fence). *)
    let apply _seq ctl = control t ctl in
    (match
       Session.Receiver.handle s ~epoch:m.Wire.c_epoch ~seq:m.Wire.c_seq
         m.Wire.c_ctl ~apply ~fallback:Wire.Ack
     with
    | Session.Receiver.Stale ->
      (* A straggler from a dead session: silently dropped — nothing on
         the TC side awaits it (the new epoch voided its pending). *)
      Instrument.bump t.counters "dc.control_stale_epoch";
      None
    | Session.Receiver.Replayed r ->
      Instrument.bump t.counters "dc.control_dups_absorbed";
      reply m.Wire.c_seq r
    | Session.Receiver.Buffered ->
      (* Ahead of its turn: parked until the TC's resend fills the gap.
         No reply — the sender's backoff keeps the buffered frame's own
         resend alive until it is applied. *)
      Instrument.bump t.counters "dc.control_buffered";
      None
    | Session.Receiver.Applied r -> reply m.Wire.c_seq r)

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let dump_table t name =
  match find_table t name with
  | None -> []
  | Some tbl ->
    let acc = ref [] in
    Btree.scan tbl.tree ~from:"" (fun k d ->
        acc := (k, decode_cell d) :: !acc;
        `Continue);
    List.rev !acc

let table_root t name = Btree.root (Hashtbl.find t.tables name).tree

let table_pages t name = Btree.all_pages (Hashtbl.find t.tables name).tree

let cache t = t.cache

let disk t = t.disk

let dc_log_records t = Wal.stable_count t.dc_log + Wal.volatile_count t.dc_log

let dc_log_bytes t = Wal.appended_bytes t.dc_log

let iter_dc_log t f =
  Wal.iter_from t.dc_log Lsn.zero f;
  Wal.iter_volatile t.dc_log f

let splits t = t.total_splits

let consolidations t = t.total_consolidations

let dup_absorbed t = t.dup_absorbed

let pages_dropped t = t.pages_dropped

let records_reset t = t.records_reset

(* Proactive contract termination (Section 4.2.1: the DC "could
   spontaneously inform TC that the RSSP can advance to be after a given
   LSN"): the largest LSN such that no dirty page holds an unflushed
   operation of this TC below it. *)
let suggested_rssp t ~tc =
  List.fold_left
    (fun acc pid ->
      match Page_id.Tbl.find_opt t.states pid with
      | None -> acc
      | Some st -> (
        match Lsn.Set.min_elt_opt (pending_of st tc) with
        | None -> acc
        | Some m -> Lsn.min acc m))
    (Lsn.next (eosl_of t tc))
    (Cache.dirty_pages t.cache)

let take_escalation t =
  let e = t.escalated in
  t.escalated <- false;
  e

let page_meta_of t pid =
  match Page_id.Tbl.find_opt t.states pid with
  | Some st -> { Page_meta.dlsn = st.dlsn; ablsns = st.ablsns }
  | None -> (
    match Cache.lookup t.cache pid with
    | Some page -> Page_meta.decode (Page.meta page)
    | None -> Page_meta.empty)
