(** The DC's on-page record representation.

    Beyond the user value, a record carries what the multi-TC and
    versioning machinery of Section 6 needs:

    - [writer]: the TC whose operations own this record.  Per-TC page
      reset after a TC failure (Section 6.1.2) replaces exactly the
      failed TC's records from the disk version — the paper suggests
      linking records to the TC's abLSN on the page; tagging each record
      with its writing TC is the equivalent association.
    - [before]: the committed before-version of Section 6.2.2.
      [Null_before] marks a freshly inserted record ("a before null
      version followed by the intended insert"), so aborting the insert
      removes the record and read-committed readers skip it.
    - [deleted]: a versioned delete keeps the record as a tombstone
      until the transaction's fate is known.
    - [wlsn]: the LSN of the operation that last wrote the record.
      After a TC failure, effects above the failed TC's stable log must
      be subtracted from every recoverable page image (Section 5.3.2);
      the write LSN is what identifies them. *)

type before = Absent | Null_before | Value_before of string

type t = {
  value : string;
  deleted : bool;
  before : before;
  writer : Untx_util.Tc_id.t;
  wlsn : Untx_util.Lsn.t;
}

val plain : writer:Untx_util.Tc_id.t -> wlsn:Untx_util.Lsn.t -> string -> t
(** An unversioned committed record. *)

val current : t -> string option
(** What the owning TC (or a dirty reader) sees: [None] for tombstones. *)

val committed : t -> string option
(** What a read-committed reader from another TC sees: the before
    version when one exists, the current value otherwise. *)

val encode : t -> string

val decode : string -> t

val encoded_size : t -> int
