module Page = Untx_storage.Page
module Page_id = Untx_storage.Page_id
module Tc_id = Untx_util.Tc_id

type page_image = {
  pid : Page_id.t;
  kind : Page.kind;
  cells : (string * string) list;
  next : Page_id.t option;
  ablsns : Ablsn.t Tc_id.Map.t;
}

let image_of_page page ~ablsns =
  {
    pid = Page.id page;
    kind = Page.kind page;
    cells = Page.cells page;
    next = Page.next page;
    ablsns;
  }

type t =
  | Create_table of { table : string; versioned : bool; root : Page_id.t }
  | Split of {
      table : string;
      level : int;
      old_pid : Page_id.t;
      split_key : string;
      new_image : page_image;
      parent_pid : Page_id.t;
      sep_key : string;
      new_root : page_image option;
      root : Page_id.t;
    }
  | Consolidate of {
      table : string;
      survivor_image : page_image;
      freed_pid : Page_id.t;
      parent_pid : Page_id.t;
      removed_sep : string;
      new_root : Page_id.t option;
      root : Page_id.t;
    }
  | Tc_restart of { tc : Tc_id.t; stable_lsn : Untx_util.Lsn.t }

let image_size img =
  List.fold_left
    (fun acc (k, d) -> acc + String.length k + String.length d + 4)
    (16
    + Tc_id.Map.fold (fun _ ab acc -> acc + Ablsn.encoded_size ab) img.ablsns 0
    )
    img.cells

let size = function
  | Create_table { table; _ } -> 16 + String.length table
  | Split { table; split_key; new_image; sep_key; new_root; _ } ->
    (* logical old-page part: split key only; physical new-page part:
       full image *)
    24 + String.length table + String.length split_key
    + String.length sep_key + image_size new_image
    + (match new_root with Some img -> image_size img | None -> 0)
  | Consolidate { table; survivor_image; removed_sep; _ } ->
    24 + String.length table + String.length removed_sep
    + image_size survivor_image
  | Tc_restart _ -> 12

let pp ppf = function
  | Create_table { table; versioned; root } ->
    Format.fprintf ppf "create-table %s%s root=%a" table
      (if versioned then " (versioned)" else "")
      Page_id.pp root
  | Split { table; level; old_pid; split_key; new_image; _ } ->
    Format.fprintf ppf "split %s level=%d %a at %S -> %a" table level
      Page_id.pp old_pid split_key Page_id.pp new_image.pid
  | Consolidate { table; survivor_image; freed_pid; _ } ->
    Format.fprintf ppf "consolidate %s %a <- %a" table Page_id.pp
      survivor_image.pid Page_id.pp freed_pid
  | Tc_restart { tc; stable_lsn } ->
    Format.fprintf ppf "tc-restart %a stable=%a" Tc_id.pp tc
      Untx_util.Lsn.pp stable_lsn
