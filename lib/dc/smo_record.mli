(** DC-log records: the DC's private log of system transactions
    (Section 5.2.2).

    Splits are logged the way the paper prescribes: a *physical* image of
    the new page (including its abstract LSNs at split time) plus a
    *logical* record for the pre-split page — just the split key, since
    whatever version of that page is on stable storage, its own abLSN
    remains valid for the keys it retains.

    Page deletes/consolidations do not commute with earlier TC
    operations on the absorbed key range, so the survivor is logged
    *physically*, with an abstract LSN that is the merge ("maximum") of
    the two pages' abLSNs — this pins the delete's position in the
    execution order even though DC recovery replays it before TC redo.

    The record's own position in the DC log is its dLSN; affected pages
    are stamped with it. *)

type page_image = {
  pid : Untx_storage.Page_id.t;
  kind : Untx_storage.Page.kind;
  cells : (string * string) list;
  next : Untx_storage.Page_id.t option;
  ablsns : Ablsn.t Untx_util.Tc_id.Map.t;
}

val image_of_page :
  Untx_storage.Page.t -> ablsns:Ablsn.t Untx_util.Tc_id.Map.t -> page_image

type t =
  | Create_table of {
      table : string;
      versioned : bool;
      root : Untx_storage.Page_id.t;
    }
  | Split of {
      table : string;
      level : int;
      old_pid : Untx_storage.Page_id.t;
      split_key : string;  (** the logical part: redo removes keys >= this *)
      new_image : page_image;  (** the physical part *)
      parent_pid : Untx_storage.Page_id.t;
      sep_key : string;  (** routing cell added to the parent *)
      new_root : page_image option;  (** set when the split grew the tree *)
      root : Untx_storage.Page_id.t;  (** root after this SMO *)
    }
  | Consolidate of {
      table : string;
      survivor_image : page_image;  (** physical, with merged abLSNs *)
      freed_pid : Untx_storage.Page_id.t;
      parent_pid : Untx_storage.Page_id.t;
      removed_sep : string;
      new_root : Untx_storage.Page_id.t option;
          (** set when the root collapsed a level (the old root page is
              freed) *)
      root : Untx_storage.Page_id.t;
    }
  | Tc_restart of {
      tc : Untx_util.Tc_id.t;
      stable_lsn : Untx_util.Lsn.t;
    }
      (** A complete restart ran on behalf of this failed TC: every leaf
          image logged {e before} this fence may bake in effects of the
          TC's operations above [stable_lsn] — lost history that the
          restart subtracted.  Logging the fence makes the subtraction
          durable: any later replay of those images must strip them
          again, long after the restart itself is forgotten. *)

val size : t -> int
(** Encoded size in bytes — E9's logical-vs-physical log volume metric. *)

val pp : Format.formatter -> t -> unit
