module Instrument = Untx_util.Instrument
module Fault = Untx_fault.Fault

(* Fault points: transient I/O errors on either side of the platter, and
   the torn write — a crash mid-write that leaves only a prefix of the
   new image on disk. *)
let p_write_io = Fault.declare "disk.page_write.io"

let p_read_io = Fault.declare "disk.page_read.io"

let p_torn = Fault.declare "disk.page_write.torn"

type t = {
  pages : Page.t Page_id.Tbl.t;
  torn : Page.t Page_id.Tbl.t;
      (* torn images pending detection, keyed by page id; the last good
         image (if any) stays in [pages] untouched *)
  mutable next_id : int;
  mutable free_list : Page_id.Set.t;
  counters : Instrument.t;
  mutable master : string option;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_written : int;
  mutable io_retries : int;
  mutable torn_writes : int;
  mutable torn_detected : int;
}

let create ?(counters = Instrument.global) () =
  {
    pages = Page_id.Tbl.create 256;
    torn = Page_id.Tbl.create 4;
    next_id = 1;
    free_list = Page_id.Set.empty;
    counters;
    master = None;
    reads = 0;
    writes = 0;
    bytes_written = 0;
    io_retries = 0;
    torn_writes = 0;
    torn_detected = 0;
  }

let alloc t =
  match Page_id.Set.min_elt_opt t.free_list with
  | Some id ->
    t.free_list <- Page_id.Set.remove id t.free_list;
    id
  | None ->
    let id = Page_id.of_int t.next_id in
    t.next_id <- t.next_id + 1;
    id

let free t id =
  Page_id.Tbl.remove t.pages id;
  Page_id.Tbl.remove t.torn id;
  t.free_list <- Page_id.Set.add id t.free_list

let reserve t id = t.free_list <- Page_id.Set.remove id t.free_list

(* Transient I/O faults are retried a bounded number of times, as a real
   driver would; a fault that persists past the retries propagates as
   [Fault.Io_error]. *)
let io_attempts = 4

let with_io_retries t point =
  let rec go n =
    try Fault.hit point
    with Fault.Io_error _ when n < io_attempts - 1 ->
      t.io_retries <- t.io_retries + 1;
      Instrument.bump t.counters "disk.io_retries";
      go (n + 1)
  in
  go 0

let write t page =
  with_io_retries t p_write_io;
  (try Fault.hit p_torn
   with Fault.Injected_crash _ as e ->
     (* The crash lands mid-write: only a prefix of the new image's
        sectors reach the platter.  The torn image is stored separately
        so [read] can detect it (a real disk would fail the checksum)
        and fall back to the last fully written image. *)
     let torn = Page.copy page in
     let cells = Page.cells torn in
     let keep = List.length cells / 2 in
     Page.replace_cells torn
       (List.filteri (fun i _ -> i < keep) cells);
     Page_id.Tbl.replace t.torn (Page.id page) torn;
     t.torn_writes <- t.torn_writes + 1;
     Instrument.bump t.counters "disk.torn_writes";
     raise e);
  Page_id.Tbl.remove t.torn (Page.id page);
  t.free_list <- Page_id.Set.remove (Page.id page) t.free_list;
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + Page.used_bytes page + Page.meta_size page;
  Instrument.bump t.counters "disk.page_writes";
  Page_id.Tbl.replace t.pages (Page.id page) (Page.copy page)

let read t id =
  with_io_retries t p_read_io;
  (match Page_id.Tbl.find_opt t.torn id with
  | Some _ ->
    (* Checksum mismatch: discard the torn image, return the previous
       good one (or [None] if the page had never been fully written). *)
    Page_id.Tbl.remove t.torn id;
    t.torn_detected <- t.torn_detected + 1;
    Instrument.bump t.counters "disk.torn_pages_detected"
  | None -> ());
  t.reads <- t.reads + 1;
  Instrument.bump t.counters "disk.page_reads";
  Option.map Page.copy (Page_id.Tbl.find_opt t.pages id)

let exists t id = Page_id.Tbl.mem t.pages id

let page_count t = Page_id.Tbl.length t.pages

let iter t f = Page_id.Tbl.iter (fun _ page -> f (Page.copy page)) t.pages

let set_master t blob =
  t.bytes_written <- t.bytes_written + String.length blob;
  Instrument.bump t.counters "disk.master_writes";
  t.master <- Some blob

let master t = t.master

let reads t = t.reads

let writes t = t.writes

let bytes_written t = t.bytes_written

let io_retries t = t.io_retries

let torn_writes t = t.torn_writes

let torn_detected t = t.torn_detected
