(** Simulated stable storage.

    The paper's recovery arguments depend only on the distinction between
    stable state (survives any crash) and volatile state (lost on crash).
    This module is the stable side: a page store whose contents survive
    every simulated crash, with I/O accounting so experiments can report
    read/write/flush counts and bytes.

    Pages written here are deep-copied, so later in-cache mutation cannot
    leak into "stable" state — the classic bug this substrate must make
    impossible.

    Fault points (see {!Untx_fault.Fault}): ["disk.page_write.io"] and
    ["disk.page_read.io"] inject transient I/O errors that are retried a
    bounded number of times before propagating; ["disk.page_write.torn"]
    simulates a crash mid-write that persists only a prefix of the new
    image — the torn image fails its checksum on the next {!read}, which
    falls back to the last fully written image. *)

type t

val create : ?counters:Untx_util.Instrument.t -> unit -> t

val alloc : t -> Page_id.t
(** Allocate a fresh page id (from the free list if possible). *)

val free : t -> Page_id.t -> unit
(** Return a page's space; its stored image is dropped.  Idempotent. *)

val reserve : t -> Page_id.t -> unit
(** Mark a page id as live so the allocator will not hand it out —
    recovery uses this when re-materializing a page whose id an earlier
    (replayed) free pushed onto the free list. *)

val write : t -> Page.t -> unit
(** Atomically replace the stable image of the page (a flush). *)

val read : t -> Page_id.t -> Page.t option
(** A deep copy of the stable image, or [None] if never written/freed. *)

val exists : t -> Page_id.t -> bool

val page_count : t -> int

val iter : t -> (Page.t -> unit) -> unit
(** Visit a copy of every stored page (order unspecified). *)

val set_master : t -> string -> unit
(** Atomically replace the master record — the well-known boot block
    where a component keeps its catalog (table roots etc.).  Stable. *)

val master : t -> string option

val reads : t -> int

val writes : t -> int

val bytes_written : t -> int

val io_retries : t -> int
(** Transient injected I/O errors absorbed by retrying. *)

val torn_writes : t -> int
(** Injected torn writes (crash mid-write, prefix persisted). *)

val torn_detected : t -> int
(** Torn images detected (checksum) and discarded by {!read}. *)
