module Instrument = Untx_util.Instrument
module Fault = Untx_fault.Fault

(* The cache is the DC's buffer manager, hence the dc.* point names:
   a crash on either side of the page write is the classic
   half-flushed-checkpoint scenario of paper Section 5.3. *)
let p_flush_before = Fault.declare "dc.flush.before_page_write"

let p_flush_after = Fault.declare "dc.flush.after_page_write"

type entry = {
  page : Page.t;
  mutable dirty : bool;
  mutable referenced : bool; (* clock reference bit: one second chance *)
  mutable slot : int; (* index in the clock ring; -1 when detached *)
}

type t = {
  disk : Disk.t;
  capacity : int;
  entries : entry Page_id.Tbl.t;
  counters : Instrument.t;
  mutable can_flush : Page.t -> bool;
  mutable prepare_flush : Page.t -> unit;
  (* Victim search is a second-chance clock over a dense ring of the
     resident entries (removal swaps the last slot in), so one eviction
     inspects each resident page at most twice — not the O(pool) fold
     per candidate the old LRU-ticket scan paid. *)
  mutable ring : entry option array;
  mutable ring_len : int;
  mutable hand : int;
  mutable evictions : int;
  mutable flush_stalls : int;
  mutable latch_depth : int; (* operation latches: eviction deferred *)
}

let create ?(counters = Instrument.global) ~disk ~capacity () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    disk;
    capacity;
    entries = Page_id.Tbl.create (2 * capacity);
    counters;
    can_flush = (fun _ -> true);
    prepare_flush = ignore;
    ring = Array.make (2 * capacity) None;
    ring_len = 0;
    hand = 0;
    evictions = 0;
    flush_stalls = 0;
    latch_depth = 0;
  }

let set_policy t ~can_flush ~prepare_flush =
  t.can_flush <- can_flush;
  t.prepare_flush <- prepare_flush

let disk t = t.disk

let touch _t entry = entry.referenced <- true

let ring_add t entry =
  if t.ring_len = Array.length t.ring then begin
    let bigger = Array.make (2 * Array.length t.ring) None in
    Array.blit t.ring 0 bigger 0 t.ring_len;
    t.ring <- bigger
  end;
  t.ring.(t.ring_len) <- Some entry;
  entry.slot <- t.ring_len;
  t.ring_len <- t.ring_len + 1

let ring_remove t entry =
  if entry.slot >= 0 then begin
    let last = t.ring_len - 1 in
    (match t.ring.(last) with
    | Some moved when entry.slot <> last ->
      t.ring.(entry.slot) <- Some moved;
      moved.slot <- entry.slot
    | _ -> ());
    t.ring.(last) <- None;
    t.ring_len <- last;
    entry.slot <- -1;
    if t.hand >= t.ring_len then t.hand <- 0
  end

let flush_entry t entry =
  if entry.dirty then begin
    if not (t.can_flush entry.page) then begin
      t.flush_stalls <- t.flush_stalls + 1;
      Instrument.bump t.counters "cache.flush_stalls";
      false
    end
    else begin
      t.prepare_flush entry.page;
      Fault.hit p_flush_before;
      Disk.write t.disk entry.page;
      Fault.hit p_flush_after;
      entry.dirty <- false;
      Instrument.bump t.counters "cache.flushes";
      true
    end
  end
  else true

(* One clock sweep: strip reference bits, skip unflushable dirty pages,
   stop at the first evictable entry.  The budget of two full turns
   guarantees termination when every resident page is pinned down by
   the causality rule (all referenced on turn one, all skipped on turn
   two) — the pool then simply stays over capacity rather than spin or
   violate write-ahead ordering. *)
let rec find_victim t ~scanned ~budget =
  if t.ring_len = 0 || scanned >= budget then None
  else begin
    Instrument.bump t.counters "cache.evict_scan_steps";
    let entry =
      match t.ring.(t.hand) with Some e -> e | None -> assert false
    in
    t.hand <- (t.hand + 1) mod t.ring_len;
    if entry.referenced then begin
      entry.referenced <- false;
      find_victim t ~scanned:(scanned + 1) ~budget
    end
    else if entry.dirty && not (t.can_flush entry.page) then begin
      Instrument.bump t.counters "cache.evict_skips";
      find_victim t ~scanned:(scanned + 1) ~budget
    end
    else Some entry
  end

let maybe_evict t =
  while t.latch_depth = 0 && Page_id.Tbl.length t.entries > t.capacity do
    match find_victim t ~scanned:0 ~budget:(2 * t.ring_len) with
    | None -> raise Exit
    | Some entry ->
      if flush_entry t entry then begin
        Page_id.Tbl.remove t.entries (Page.id entry.page);
        ring_remove t entry;
        t.evictions <- t.evictions + 1;
        Instrument.bump t.counters "cache.evictions"
      end
      else raise Exit
  done

let maybe_evict t = try maybe_evict t with Exit -> ()

let add_entry t page dirty =
  (* [install] may overwrite a resident page under the same id: the old
     entry must leave the ring, or its stale slot would shadow the new
     one. *)
  (match Page_id.Tbl.find_opt t.entries (Page.id page) with
  | Some old -> ring_remove t old
  | None -> ());
  let entry = { page; dirty; referenced = true; slot = -1 } in
  Page_id.Tbl.replace t.entries (Page.id page) entry;
  ring_add t entry;
  maybe_evict t;
  entry

let new_page t ~kind ~page_capacity =
  let id = Disk.alloc t.disk in
  let page = Page.create ~id ~kind ~capacity:page_capacity in
  let entry = add_entry t page true in
  entry.page

let install t page =
  (* the id is live again even if a replayed free put it on the free list *)
  Disk.reserve t.disk (Page.id page);
  ignore (add_entry t page true)

let cached t id =
  match Page_id.Tbl.find_opt t.entries id with
  | Some entry ->
    touch t entry;
    Some entry.page
  | None -> None

let lookup t id =
  match cached t id with
  | Some page -> Some page
  | None -> (
    match Disk.read t.disk id with
    | None -> None
    | Some page ->
      let entry = add_entry t page false in
      Instrument.bump t.counters "cache.misses";
      Some entry.page)

let get t id =
  match lookup t id with Some page -> page | None -> raise Not_found

let mark_dirty t page =
  match Page_id.Tbl.find_opt t.entries (Page.id page) with
  | Some entry ->
    if entry.page != page then
      invalid_arg "Cache.mark_dirty: stale page object";
    entry.dirty <- true
  | None -> ignore (add_entry t page true)

let is_dirty t id =
  match Page_id.Tbl.find_opt t.entries id with
  | Some entry -> entry.dirty
  | None -> false

let detach t id =
  match Page_id.Tbl.find_opt t.entries id with
  | Some entry ->
    Page_id.Tbl.remove t.entries id;
    ring_remove t entry
  | None -> ()

let free_page t id =
  detach t id;
  Disk.free t.disk id

let try_flush t id =
  match Page_id.Tbl.find_opt t.entries id with
  | None -> true
  | Some entry -> flush_entry t entry

let flush_all t =
  Page_id.Tbl.iter (fun _ entry -> ignore (flush_entry t entry)) t.entries

let drop_page t id = detach t id

let crash t =
  Page_id.Tbl.reset t.entries;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.ring_len <- 0;
  t.hand <- 0

let enforce_capacity t = maybe_evict t

let with_operation_latch t f =
  t.latch_depth <- t.latch_depth + 1;
  let finish () =
    t.latch_depth <- t.latch_depth - 1;
    if t.latch_depth = 0 then maybe_evict t
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let resident t = Page_id.Tbl.length t.entries

let dirty_pages t =
  Page_id.Tbl.fold
    (fun id entry acc -> if entry.dirty then id :: acc else acc)
    t.entries []

let iter_cached t f = Page_id.Tbl.iter (fun _ entry -> f entry.page) t.entries

let evictions t = t.evictions

let flush_stalls t = t.flush_stalls
