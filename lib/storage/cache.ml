module Instrument = Untx_util.Instrument
module Fault = Untx_fault.Fault

(* The cache is the DC's buffer manager, hence the dc.* point names:
   a crash on either side of the page write is the classic
   half-flushed-checkpoint scenario of paper Section 5.3. *)
let p_flush_before = Fault.declare "dc.flush.before_page_write"

let p_flush_after = Fault.declare "dc.flush.after_page_write"

type entry = { page : Page.t; mutable dirty : bool; mutable ticket : int }

type t = {
  disk : Disk.t;
  capacity : int;
  entries : entry Page_id.Tbl.t;
  counters : Instrument.t;
  mutable can_flush : Page.t -> bool;
  mutable prepare_flush : Page.t -> unit;
  mutable clock : int; (* LRU tickets *)
  mutable evictions : int;
  mutable flush_stalls : int;
  mutable latch_depth : int; (* operation latches: eviction deferred *)
}

let create ?(counters = Instrument.global) ~disk ~capacity () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    disk;
    capacity;
    entries = Page_id.Tbl.create (2 * capacity);
    counters;
    can_flush = (fun _ -> true);
    prepare_flush = ignore;
    clock = 0;
    evictions = 0;
    flush_stalls = 0;
    latch_depth = 0;
  }

let set_policy t ~can_flush ~prepare_flush =
  t.can_flush <- can_flush;
  t.prepare_flush <- prepare_flush

let disk t = t.disk

let touch t entry =
  t.clock <- t.clock + 1;
  entry.ticket <- t.clock

let flush_entry t entry =
  if entry.dirty then begin
    if not (t.can_flush entry.page) then begin
      t.flush_stalls <- t.flush_stalls + 1;
      Instrument.bump t.counters "cache.flush_stalls";
      false
    end
    else begin
      t.prepare_flush entry.page;
      Fault.hit p_flush_before;
      Disk.write t.disk entry.page;
      Fault.hit p_flush_after;
      entry.dirty <- false;
      Instrument.bump t.counters "cache.flushes";
      true
    end
  end
  else true

(* Evict the least-recently-used page that is clean or flushable.  Dirty
   pages pinned down by the causality rule simply stay resident: the pool
   may exceed its capacity rather than violate write-ahead ordering. *)
let maybe_evict t =
  while t.latch_depth = 0 && Page_id.Tbl.length t.entries > t.capacity do
    let victim =
      Page_id.Tbl.fold
        (fun id entry best ->
          let evictable = (not entry.dirty) || t.can_flush entry.page in
          if not evictable then begin
            Instrument.bump t.counters "cache.evict_skips";
            best
          end
          else
            match best with
            | Some (_, best_entry) when best_entry.ticket <= entry.ticket ->
              best
            | _ -> Some (id, entry))
        t.entries None
    in
    match victim with
    | None -> raise Exit
    | Some (id, entry) ->
      if flush_entry t entry then begin
        Page_id.Tbl.remove t.entries id;
        t.evictions <- t.evictions + 1;
        Instrument.bump t.counters "cache.evictions"
      end
      else raise Exit
  done

let maybe_evict t = try maybe_evict t with Exit -> ()

let add_entry t page dirty =
  let entry = { page; dirty; ticket = 0 } in
  touch t entry;
  Page_id.Tbl.replace t.entries (Page.id page) entry;
  maybe_evict t;
  entry

let new_page t ~kind ~page_capacity =
  let id = Disk.alloc t.disk in
  let page = Page.create ~id ~kind ~capacity:page_capacity in
  let entry = add_entry t page true in
  entry.page

let install t page =
  (* the id is live again even if a replayed free put it on the free list *)
  Disk.reserve t.disk (Page.id page);
  ignore (add_entry t page true)

let cached t id =
  match Page_id.Tbl.find_opt t.entries id with
  | Some entry ->
    touch t entry;
    Some entry.page
  | None -> None

let lookup t id =
  match cached t id with
  | Some page -> Some page
  | None -> (
    match Disk.read t.disk id with
    | None -> None
    | Some page ->
      let entry = add_entry t page false in
      Instrument.bump t.counters "cache.misses";
      Some entry.page)

let get t id =
  match lookup t id with Some page -> page | None -> raise Not_found

let mark_dirty t page =
  match Page_id.Tbl.find_opt t.entries (Page.id page) with
  | Some entry ->
    if entry.page != page then
      invalid_arg "Cache.mark_dirty: stale page object";
    entry.dirty <- true
  | None -> ignore (add_entry t page true)

let is_dirty t id =
  match Page_id.Tbl.find_opt t.entries id with
  | Some entry -> entry.dirty
  | None -> false

let free_page t id =
  Page_id.Tbl.remove t.entries id;
  Disk.free t.disk id

let try_flush t id =
  match Page_id.Tbl.find_opt t.entries id with
  | None -> true
  | Some entry -> flush_entry t entry

let flush_all t =
  Page_id.Tbl.iter (fun _ entry -> ignore (flush_entry t entry)) t.entries

let drop_page t id = Page_id.Tbl.remove t.entries id

let crash t =
  Page_id.Tbl.reset t.entries;
  t.clock <- 0

let enforce_capacity t = maybe_evict t

let with_operation_latch t f =
  t.latch_depth <- t.latch_depth + 1;
  let finish () =
    t.latch_depth <- t.latch_depth - 1;
    if t.latch_depth = 0 then maybe_evict t
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let resident t = Page_id.Tbl.length t.entries

let dirty_pages t =
  Page_id.Tbl.fold
    (fun id entry acc -> if entry.dirty then id :: acc else acc)
    t.entries []

let iter_cached t f = Page_id.Tbl.iter (fun _ entry -> f entry.page) t.entries

let evictions t = t.evictions

let flush_stalls t = t.flush_stalls
