module Instrument = Untx_util.Instrument
module Transport = Untx_kernel.Transport
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc

type scheme = Hash | Range of string list

type ptable = {
  pt_versioned : bool;
  pt_dcs : string array; (* partition id -> DC name *)
  pt_scheme : scheme;
}

type t = {
  counters : Instrument.t;
  policy : Transport.policy;
  mutable seed : int;
  dcs : (string, Dc.t) Hashtbl.t;
  tcs : (string, Tc.t) Hashtbl.t;
  transports : (string * string, Transport.t) Hashtbl.t; (* (tc, dc) *)
  ptables : (string, ptable) Hashtbl.t; (* partitioned table registry *)
  mutable next_part : int; (* partition ids handed out by add_dc *)
  mutable last_faulted : string option;
      (* the DC whose handler last raised — the component a mid-traffic
         Injected_crash actually belongs to *)
}

let create ?(counters = Instrument.global) ?(policy = Transport.reliable)
    ?(seed = 42) () =
  {
    counters;
    policy;
    seed;
    dcs = Hashtbl.create 4;
    tcs = Hashtbl.create 4;
    transports = Hashtbl.create 8;
    ptables = Hashtbl.create 4;
    next_part = 0;
    last_faulted = None;
  }

let fresh_seed t =
  t.seed <- t.seed + 7919;
  t.seed

(* ------------------------------------------------------------------ *)
(* Partition map                                                       *)

(* FNV-1a over the key, masked positive: a stable hash — the map must
   route identically across TC restarts, or redo would ship records to
   the wrong partition. *)
let hash_key key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    key;
  !h

let partition_index pt key =
  let n = Array.length pt.pt_dcs in
  match pt.pt_scheme with
  | Hash -> hash_key key mod n
  | Range splits ->
    (* splits.(i) is the first key of partition i+1 *)
    let rec go i = function
      | [] -> i
      | s :: rest -> if String.compare key s < 0 then i else go (i + 1) rest
    in
    go 0 splits

let partition_dc t ~table ~key =
  match Hashtbl.find_opt t.ptables table with
  | Some pt -> pt.pt_dcs.(partition_index pt key)
  | None -> invalid_arg ("Deploy.partition_dc: not partitioned: " ^ table)

let partitions t ~table =
  match Hashtbl.find_opt t.ptables table with
  | Some pt -> Array.to_list pt.pt_dcs
  | None -> invalid_arg ("Deploy.partitions: not partitioned: " ^ table)

let install_ptable_route _t tc name pt =
  Tc.map_table_partitioned tc ~table:name ~versioned:pt.pt_versioned
    ~partition:(fun key -> pt.pt_dcs.(partition_index pt key))

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)

let link t ~tc_name ~dc_name =
  if not (Hashtbl.mem t.transports (tc_name, dc_name)) then begin
    let dc = Hashtbl.find t.dcs dc_name in
    (* Each (TC, DC) pair gets its own two-channel byte plane; control
       traffic rides the same adversary as data.  Handlers are wrapped
       so an injected fault escaping the DC is attributed to it — a
       deployment must crash the component that actually died, not
       whichever DC a plan happened to name. *)
    let attribute f frame =
      try f frame
      with e ->
        t.last_faulted <- Some dc_name;
        raise e
    in
    let transport =
      Transport.create ~counters:t.counters ~policy:t.policy
        ~label:(tc_name ^ ":" ^ dc_name) ~seed:(fresh_seed t)
        ~data:(attribute (Dc.handle_request_frame dc))
        ~control:(attribute (Dc.handle_control_frame dc))
        ()
    in
    Hashtbl.add t.transports (tc_name, dc_name) transport;
    let tc = Hashtbl.find t.tcs tc_name in
    Tc.attach_dc tc
      {
        Tc.dc_name;
        part = Dc.part dc;
        send = Transport.send transport;
        send_control = Transport.send_control transport;
        drain = (fun () -> Transport.drain transport);
      }
  end

let add_dc t ~name config =
  if Hashtbl.mem t.dcs name then invalid_arg ("Deploy.add_dc: dup " ^ name);
  let dc = Dc.create ~counters:t.counters config in
  Dc.set_identity dc ~part:t.next_part;
  t.next_part <- t.next_part + 1;
  Hashtbl.add t.dcs name dc;
  Hashtbl.iter (fun tc_name _ -> link t ~tc_name ~dc_name:name) t.tcs;
  dc

let add_tc t ~name config =
  if Hashtbl.mem t.tcs name then invalid_arg ("Deploy.add_tc: dup " ^ name);
  let tc = Tc.create ~counters:t.counters config in
  Hashtbl.add t.tcs name tc;
  Hashtbl.iter (fun dc_name _ -> link t ~tc_name:name ~dc_name) t.dcs;
  (* A late TC routes every already-partitioned table the same way. *)
  Hashtbl.iter (fun tname pt -> install_ptable_route t tc tname pt) t.ptables;
  tc

let tc t name = Hashtbl.find t.tcs name

let dc t name = Hashtbl.find t.dcs name

let tc_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.tcs [] |> List.sort String.compare

let dc_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.dcs [] |> List.sort String.compare

let create_table t ~dc:dc_name ~name ~versioned =
  Dc.create_table (dc t dc_name) ~name ~versioned

let add_partitioned_table t ?(scheme = Hash) ~name ~versioned ~dcs:dc_list ()
    =
  if dc_list = [] then invalid_arg "Deploy.add_partitioned_table: no DCs";
  if Hashtbl.mem t.ptables name then
    invalid_arg ("Deploy.add_partitioned_table: dup " ^ name);
  (match scheme with
  | Range splits when List.length splits <> List.length dc_list - 1 ->
    invalid_arg "Deploy.add_partitioned_table: need N-1 range splits"
  | _ -> ());
  List.iter
    (fun d ->
      if not (Hashtbl.mem t.dcs d) then
        invalid_arg ("Deploy.add_partitioned_table: unknown DC " ^ d))
    dc_list;
  let pt =
    { pt_versioned = versioned; pt_dcs = Array.of_list dc_list;
      pt_scheme = scheme }
  in
  Hashtbl.add t.ptables name pt;
  (* The physical table exists at every owning DC; each holds only the
     keys the map routes to it. *)
  List.iter (fun d -> Dc.create_table (dc t d) ~name ~versioned) dc_list;
  Hashtbl.iter (fun _ tc -> install_ptable_route t tc name pt) t.tcs

let drop_in_flight_for t ~dc_name =
  Hashtbl.iter
    (fun (_, d) transport ->
      if String.equal d dc_name then Transport.drop_in_flight transport)
    t.transports

let crash_dc t name =
  let dc = dc t name in
  drop_in_flight_for t ~dc_name:name;
  (try
     Dc.crash dc;
     Dc.recover dc
   with e ->
     (* the fault plan struck again inside this DC's own recovery *)
     t.last_faulted <- Some name;
     raise e);
  (* Prompt every TC: each resends its own history (the DC's per-TC
     abstract LSNs absorb what survived on stable pages).  Sibling
     partitions are untouched — single-partition restart is the point
     of the partitioned deployment. *)
  Hashtbl.iter (fun _ tc -> Tc.on_dc_restart tc ~dc:name) t.tcs

let crash_tc t name =
  let tc_obj = tc t name in
  Hashtbl.iter
    (fun (tcn, _) transport ->
      if String.equal tcn name then Transport.drop_in_flight transport)
    t.transports;
  Tc.crash tc_obj;
  Tc.recover tc_obj;
  (* A DC that turned the partial failure into its own complete one —
     draconian mode, or a selective reset that had to escalate — lost
     other TCs' unflushed work: they must redo. *)
  Hashtbl.iter
    (fun dc_name dc ->
      if Dc.take_escalation dc then begin
        Instrument.bump t.counters "deploy.escalation_redo";
        (* The complete restart killed the DC's sockets: frames in flight
           to or from it died with them, exactly as in [crash_dc].  In
           particular the other TCs' pre-crash watermarks must not reach
           the rebuilt DC — their redo is about to run under a capped
           low-water mark, and a stale high claim would let mid-redo
           stall-policy flushes over-claim coverage (absorbing the rest
           of the redo as duplicates). *)
        drop_in_flight_for t ~dc_name;
        Hashtbl.iter
          (fun tcn tc ->
            if not (String.equal tcn name) then Tc.on_dc_restart tc ~dc:dc_name)
          t.tcs
      end)
    t.dcs

let take_last_faulted t =
  let f = t.last_faulted in
  t.last_faulted <- None;
  f

let crash_for_point t ~point ~tc ~dc =
  let rec go attempts point ~dc =
    try
      match Untx_kernel.Kernel.component_of_point point with
      | `Tc ->
        ignore (take_last_faulted t);
        crash_tc t tc
      | `Dc ->
        (* Crash the DC the fault actually escaped from: with N
           partitions, killing a sibling of the one mid-SMO would leave
           a half-done system transaction live in an unrestarted
           cache. *)
        let target = Option.value (take_last_faulted t) ~default:dc in
        crash_dc t target
    with Untx_fault.Fault.Injected_crash p when attempts > 0 ->
      go (attempts - 1) p ~dc
  in
  go 8 point ~dc

let quiesce t = Hashtbl.iter (fun _ tc -> Tc.quiesce tc) t.tcs

let messages_total t =
  Hashtbl.fold
    (fun _ transport acc -> acc + Transport.requests_delivered transport)
    t.transports 0
