module Instrument = Untx_util.Instrument
module Lsn = Untx_util.Lsn
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Transport = Untx_kernel.Transport
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Repl = Untx_repl.Repl
module Op = Untx_msg.Op
module Layer = Untx_layer.Layer
module Index = Untx_index.Index
module Branch = Untx_branch.Branch
module Tc_id = Untx_util.Tc_id

type scheme = Hash | Range of string list

(* The internal placement algebra: user-visible schemes, plus the
   secondary-hash placement index-entry tables need — hash the decoded
   secondary-key component, so every entry for one secondary key lands
   on one partition and a lookup's prefix scan never crosses DCs. *)
type pscheme = User of scheme | Hash_sec

type ptable = {
  pt_versioned : bool;
  pt_dcs : string array; (* partition id -> DC name *)
  pt_scheme : pscheme;
}

type standby_entry = { sb_standby : Repl.Standby.t; sb_primary : string }

type branch_entry = {
  be_branch : Branch.t;
  be_parent : string option;
      (* the parent branch's name; [None] for a branch forked straight
         off a root TC's layer store *)
  be_tc : string; (* the root TC whose (combined) LSN space it addresses *)
}

type t = {
  counters : Instrument.t;
  policy : Transport.policy;
  durability : Repl.durability;
  layers : bool;
      (* every TC's manager runs a layered log store: truncation floors
         at the store's durable watermark, failover can redo from
         layers, standbys bootstrap from materialized state *)
  mutable seed : int;
  dcs : (string, Dc.t) Hashtbl.t;
  tcs : (string, Tc.t) Hashtbl.t;
  transports : (string * string, Transport.t) Hashtbl.t; (* (tc, dc) *)
  ptables : (string, ptable) Hashtbl.t; (* partitioned table registry *)
  dc_configs : (string, Dc.config) Hashtbl.t;
      (* for minting standbys that match their primary *)
  dc_tables : (string, (string * bool) list ref) Hashtbl.t;
      (* tables created per DC, replayed onto new standbys *)
  standbys : (string, standby_entry) Hashtbl.t; (* keyed by standby name *)
  managers : (string, Repl.Manager.t) Hashtbl.t; (* keyed by TC name *)
  repl_transports : (string * string, Transport.t) Hashtbl.t;
      (* (tc, standby): repl-only links *)
  branches : (string, branch_entry) Hashtbl.t; (* keyed by branch name *)
  mutable next_part : int; (* partition ids handed out by add_dc *)
  mutable last_faulted : string option;
      (* the DC whose handler last raised — the component a mid-traffic
         Injected_crash actually belongs to *)
}

let create ?(counters = Instrument.global) ?(policy = Transport.reliable)
    ?(durability = Repl.Primary_only) ?(layers = false) ?(seed = 42) () =
  {
    counters;
    policy;
    durability;
    layers;
    seed;
    dcs = Hashtbl.create 4;
    tcs = Hashtbl.create 4;
    transports = Hashtbl.create 8;
    ptables = Hashtbl.create 4;
    dc_configs = Hashtbl.create 4;
    dc_tables = Hashtbl.create 4;
    standbys = Hashtbl.create 4;
    managers = Hashtbl.create 4;
    repl_transports = Hashtbl.create 8;
    branches = Hashtbl.create 4;
    next_part = 0;
    last_faulted = None;
  }

let fresh_seed t =
  t.seed <- t.seed + 7919;
  t.seed

(* ------------------------------------------------------------------ *)
(* Partition map                                                       *)

(* FNV-1a over the key, masked positive: a stable hash — the map must
   route identically across TC restarts, or redo would ship records to
   the wrong partition. *)
let hash_key key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    key;
  !h

let partition_index pt key =
  let n = Array.length pt.pt_dcs in
  match pt.pt_scheme with
  | User Hash -> hash_key key mod n
  | User (Range splits) ->
    (* splits.(i) is the first key of partition i+1 *)
    let rec go i = function
      | [] -> i
      | s :: rest -> if String.compare key s < 0 then i else go (i + 1) rest
    in
    go 0 splits
  | Hash_sec -> hash_key (Index.sec_of_entry key) mod n

let partition_dc t ~table ~key =
  match Hashtbl.find_opt t.ptables table with
  | Some pt -> pt.pt_dcs.(partition_index pt key)
  | None -> invalid_arg ("Deploy.partition_dc: not partitioned: " ^ table)

let partitions t ~table =
  match Hashtbl.find_opt t.ptables table with
  | Some pt -> Array.to_list pt.pt_dcs
  | None -> invalid_arg ("Deploy.partitions: not partitioned: " ^ table)

let install_ptable_route _t tc name pt =
  Tc.map_table_partitioned tc ~table:name ~versioned:pt.pt_versioned
    ~partition:(fun key -> pt.pt_dcs.(partition_index pt key))

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)

let link t ~tc_name ~dc_name =
  if not (Hashtbl.mem t.transports (tc_name, dc_name)) then begin
    let dc = Hashtbl.find t.dcs dc_name in
    let tc = Hashtbl.find t.tcs tc_name in
    (* Each (TC, DC) pair gets its own two-channel byte plane; control
       traffic rides the same adversary as data.  Handlers are wrapped
       so an injected fault escaping the DC is attributed to it — a
       deployment must crash the component that actually died, not
       whichever DC a plan happened to name.  The link declares its
       owning TC to the DC: a frame stamped with another TC's id is a
       wiring bug and is rejected there instead of applied under the
       wrong idempotence state. *)
    let attribute f frame =
      try f frame
      with e ->
        t.last_faulted <- Some dc_name;
        raise e
    in
    let expect = Tc.id tc in
    let transport =
      Transport.create ~counters:t.counters ~policy:t.policy
        ~label:(tc_name ^ ":" ^ dc_name) ~seed:(fresh_seed t)
        ~data:(attribute (Dc.handle_request_frame ~expect dc))
        ~control:(attribute (Dc.handle_control_frame ~expect dc))
        ()
    in
    Hashtbl.add t.transports (tc_name, dc_name) transport;
    Tc.attach_dc tc
      {
        Tc.dc_name;
        part = Dc.part dc;
        send = Transport.send transport;
        send_control = Transport.send_control transport;
        drain = (fun () -> Transport.drain transport);
      }
  end

exception Out_of_range of { wanted : Lsn.t; durable : Lsn.t }

let () =
  Printexc.register_printer (function
    | Out_of_range { wanted; durable } ->
      Some
        (Printf.sprintf "Deploy.Out_of_range { wanted = %s; durable = %s }"
           (Lsn.to_string wanted) (Lsn.to_string durable))
    | _ -> None)

(* Point-in-time reads are answered by the layered managers (looked up
   at call time — managers may not exist yet when the DC is wired).
   Stores are per-TC, and LSNs are per-TC sequences, so [at] is only
   meaningful against the store of the key's updating TC.  Deployments
   keep updaters on disjoint key sets (Section 6): every store is
   probed, and the one that knows the key answers.  Two stores both
   holding history for one key means the disjointness rule was broken —
   refused loudly, because "the" value at [at] is then ill-defined.
   An [at] no store has absorbed is a typed {!Out_of_range}, never a
   silent [None]: absent-at-[at] and unanswerable-at-[at] must not be
   confusable. *)
let wire_history_read t ~dc_name =
  let dc = Hashtbl.find t.dcs dc_name in
  Dc.set_history_read dc (fun ~table ~key ~at ->
      let stores =
        Hashtbl.fold
          (fun tc_name m acc ->
            match Repl.Manager.layer_store m with
            | Some s -> (tc_name, s) :: acc
            | None -> acc)
          t.managers []
      in
      if stores = [] then
        invalid_arg "Deploy.read_as_of: no layered manager yet";
      let answerable =
        List.filter (fun (_, s) -> Lsn.(at <= Layer.ingested_lsn s)) stores
      in
      if answerable = [] then
        raise
          (Out_of_range
             {
               wanted = at;
               durable =
                 List.fold_left
                   (fun acc (_, s) -> Lsn.max acc (Layer.ingested_lsn s))
                   Lsn.zero stores;
             });
      let hits =
        List.filter_map
          (fun (tc_name, store) ->
            Option.map
              (fun v -> (tc_name, v))
              (Layer.reconstruct store ~table ~key ~at))
          (List.sort (fun (a, _) (b, _) -> String.compare a b) answerable)
      in
      match hits with
      | [] -> None
      | [ (_, v) ] -> Some v
      | claimants ->
        invalid_arg
          (Printf.sprintf
             "Deploy.read_as_of: key %S has history under several TCs (%s) — \
              updaters must stay disjoint"
             key
             (String.concat ", " (List.map fst claimants))))

let add_dc t ~name config =
  if Hashtbl.mem t.dcs name then invalid_arg ("Deploy.add_dc: dup " ^ name);
  let dc = Dc.create ~counters:t.counters config in
  Dc.set_identity dc ~part:t.next_part;
  t.next_part <- t.next_part + 1;
  Hashtbl.add t.dcs name dc;
  Hashtbl.add t.dc_configs name config;
  if t.layers then wire_history_read t ~dc_name:name;
  Hashtbl.iter (fun tc_name _ -> link t ~tc_name ~dc_name:name) t.tcs;
  dc

(* ------------------------------------------------------------------ *)
(* Replication wiring                                                  *)

let manager_for t tc_name =
  match Hashtbl.find_opt t.managers tc_name with
  | Some m -> m
  | None ->
    let m =
      Repl.Manager.create ~counters:t.counters
        ~cfg:{ Repl.Manager.default_config with durability = t.durability }
        (Hashtbl.find t.tcs tc_name)
    in
    if t.layers then Repl.Manager.enable_layers m;
    Hashtbl.add t.managers tc_name m;
    m

(* A replica link is its own transport carrying only repl traffic; the
   attribute wrapper matters here too — a DC fault point can fire inside
   the standby's apply, and the component that died is the standby, not
   any primary a plan happened to name. *)
let attach_replica t ~tc_name ~sb_name =
  if not (Hashtbl.mem t.repl_transports (tc_name, sb_name)) then begin
    let e = Hashtbl.find t.standbys sb_name in
    let attribute f frame =
      try f frame
      with ex ->
        t.last_faulted <- Some sb_name;
        raise ex
    in
    let expect = Tc.id (Hashtbl.find t.tcs tc_name) in
    let tr =
      Transport.create ~counters:t.counters ~policy:t.policy
        ~label:(tc_name ^ ":" ^ sb_name) ~seed:(fresh_seed t)
        ~data:(fun _ -> None)
        ~control:(fun _ -> None)
        ~repl:
          (attribute (Repl.Standby.handle_repl_frame ~expect e.sb_standby))
        ()
    in
    Hashtbl.add t.repl_transports (tc_name, sb_name) tr;
    Repl.Manager.attach (manager_for t tc_name) ~name:sb_name
      ~primary:e.sb_primary ~standby:e.sb_standby
      ~send:(Transport.send_repl tr)
      ~drain:(fun () -> Transport.drain_repl tr)
  end

let replicas t ~dc =
  Hashtbl.fold
    (fun name e acc -> if String.equal e.sb_primary dc then name :: acc else acc)
    t.standbys []
  |> List.sort String.compare

let add_replica t ~dc:primary =
  let dc_obj =
    match Hashtbl.find_opt t.dcs primary with
    | Some d -> d
    | None -> invalid_arg ("Deploy.add_replica: unknown DC " ^ primary)
  in
  let name =
    let taken = replicas t ~dc:primary in
    let rec fresh i =
      let n = Printf.sprintf "%s~r%d" primary i in
      if List.mem n taken then fresh (i + 1) else n
    in
    fresh 0
  in
  let sb =
    Repl.Standby.create ~counters:t.counters
      (Hashtbl.find t.dc_configs primary)
      ~part:(Dc.part dc_obj)
  in
  (* the standby's schema mirrors everything ever created on its
     primary; later [create_table]s propagate as they happen *)
  (match Hashtbl.find_opt t.dc_tables primary with
  | Some tabs ->
    List.iter
      (fun (tname, versioned) ->
        Dc.create_table (Repl.Standby.dc sb) ~name:tname ~versioned)
      (List.rev !tabs)
  | None -> ());
  (* With layers on, a fresh standby is born from the store's
     materialized state and only the post-layer suffix ships — also the
     only correct start when truncation already passed LSN 1. *)
  if t.layers then
    Hashtbl.iter
      (fun _ m ->
        if Option.is_some (Repl.Manager.layer_store m) then
          ignore (Repl.Manager.bootstrap_standby m ~standby:sb ~primary))
      t.managers;
  Hashtbl.add t.standbys name { sb_standby = sb; sb_primary = primary };
  Hashtbl.iter (fun tc_name _ -> attach_replica t ~tc_name ~sb_name:name) t.tcs;
  name

let add_replicas t ~dc ~n =
  let missing = n - List.length (replicas t ~dc) in
  List.init (max 0 missing) (fun _ -> add_replica t ~dc)

let standby t name =
  match Hashtbl.find_opt t.standbys name with
  | Some e -> e.sb_standby
  | None -> invalid_arg ("Deploy.standby: unknown " ^ name)

let manager t ~tc = manager_for t tc

let settle_replicas t = Hashtbl.iter (fun _ m -> Repl.Manager.settle m) t.managers

let add_tc t ~name config =
  if Hashtbl.mem t.tcs name then invalid_arg ("Deploy.add_tc: dup " ^ name);
  let tc = Tc.create ~counters:t.counters config in
  Hashtbl.add t.tcs name tc;
  (* With layers on, the manager (and its store + TC hooks) must exist
     even for a TC that never gains a replica — truncation floors and
     history replay are layer concerns, not replica concerns. *)
  if t.layers then ignore (manager_for t name);
  Hashtbl.iter (fun dc_name _ -> link t ~tc_name:name ~dc_name) t.dcs;
  (* A late TC routes every already-partitioned table the same way. *)
  Hashtbl.iter (fun tname pt -> install_ptable_route t tc tname pt) t.ptables;
  (* ... and ships to every standby already deployed. *)
  Hashtbl.iter (fun sb_name _ -> attach_replica t ~tc_name:name ~sb_name)
    t.standbys;
  tc

let tc t name = Hashtbl.find t.tcs name

let dc t name = Hashtbl.find t.dcs name

let tc_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.tcs [] |> List.sort String.compare

let dc_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.dcs [] |> List.sort String.compare

let create_table t ~dc:dc_name ~name ~versioned =
  Dc.create_table (dc t dc_name) ~name ~versioned;
  let tabs =
    match Hashtbl.find_opt t.dc_tables dc_name with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t.dc_tables dc_name r;
      r
  in
  if not (List.mem_assoc name !tabs) then tabs := (name, versioned) :: !tabs;
  (* keep every standby's schema in lock-step with its primary *)
  List.iter
    (fun sb_name ->
      Dc.create_table
        (Repl.Standby.dc (standby t sb_name))
        ~name ~versioned)
    (replicas t ~dc:dc_name)

let register_ptable t ~replicas ~name ~versioned ~dcs:dc_list pscheme =
  if dc_list = [] then invalid_arg "Deploy.add_partitioned_table: no DCs";
  if Hashtbl.mem t.ptables name then
    invalid_arg ("Deploy.add_partitioned_table: dup " ^ name);
  List.iter
    (fun d ->
      if not (Hashtbl.mem t.dcs d) then
        invalid_arg ("Deploy.add_partitioned_table: unknown DC " ^ d))
    dc_list;
  let pt =
    { pt_versioned = versioned; pt_dcs = Array.of_list dc_list;
      pt_scheme = pscheme }
  in
  Hashtbl.add t.ptables name pt;
  (* The physical table exists at every owning DC (and its standbys);
     each holds only the keys the map routes to it. *)
  List.iter (fun d -> create_table t ~dc:d ~name ~versioned) dc_list;
  Hashtbl.iter (fun _ tc -> install_ptable_route t tc name pt) t.tcs;
  (* [~replicas:k] gives every owning partition k warm standbys. *)
  if replicas > 0 then
    List.iter (fun d -> ignore (add_replicas t ~dc:d ~n:replicas)) dc_list

let add_partitioned_table t ?(scheme = Hash) ?(replicas = 0) ~name ~versioned
    ~dcs:dc_list () =
  (match scheme with
  | Range splits when List.length splits <> List.length dc_list - 1 ->
    invalid_arg "Deploy.add_partitioned_table: need N-1 range splits"
  | _ -> ());
  register_ptable t ~replicas ~name ~versioned ~dcs:dc_list (User scheme)

(* An indexed table is the primary table under the user's scheme plus
   one entry table per index under secondary-hash placement, all
   sharing the replica count and versioned-ness.  Entry tables are
   ordinary partitioned tables end to end: redo, checkpoints,
   replication and failover treat them exactly like the primary. *)
let add_indexed_table t ?(scheme = Hash) ?(replicas = 0) ~idx ~name ~versioned
    ~dcs:dc_list ~indexes () =
  (match scheme with
  | Range splits when List.length splits <> List.length dc_list - 1 ->
    invalid_arg "Deploy.add_indexed_table: need N-1 range splits"
  | _ -> ());
  if indexes = [] then invalid_arg "Deploy.add_indexed_table: no indexes";
  List.iter
    (fun (iname, extract) ->
      Index.define idx ~table:name ~name:iname ~extract)
    indexes;
  register_ptable t ~replicas ~name ~versioned ~dcs:dc_list (User scheme);
  List.iter
    (fun (iname, _) ->
      register_ptable t ~replicas
        ~name:(Index.index_table ~table:name ~name:iname)
        ~versioned ~dcs:dc_list Hash_sec)
    indexes

let drop_in_flight_for t ~dc_name =
  Hashtbl.iter
    (fun (_, d) transport ->
      if String.equal d dc_name then Transport.drop_in_flight transport)
    t.transports

let crash_dc t name =
  let dc = dc t name in
  drop_in_flight_for t ~dc_name:name;
  (try
     Dc.crash dc;
     Dc.recover dc
   with e ->
     (* the fault plan struck again inside this DC's own recovery *)
     t.last_faulted <- Some name;
     raise e);
  (* Prompt every TC: each resends its own history (the DC's per-TC
     abstract LSNs absorb what survived on stable pages).  Sibling
     partitions are untouched — single-partition restart is the point
     of the partitioned deployment. *)
  Hashtbl.iter (fun _ tc -> Tc.on_dc_restart tc ~dc:name) t.tcs

let crash_tc t name =
  let tc_obj = tc t name in
  Hashtbl.iter
    (fun (tcn, _) transport ->
      if String.equal tcn name then Transport.drop_in_flight transport)
    t.transports;
  Tc.crash tc_obj;
  Tc.recover tc_obj;
  (* A DC that turned the partial failure into its own complete one —
     draconian mode, or a selective reset that had to escalate — lost
     other TCs' unflushed work: they must redo. *)
  Hashtbl.iter
    (fun dc_name dc ->
      if Dc.take_escalation dc then begin
        Instrument.bump t.counters "deploy.escalation_redo";
        (* The complete restart killed the DC's sockets: frames in flight
           to or from it died with them, exactly as in [crash_dc].  In
           particular the other TCs' pre-crash watermarks must not reach
           the rebuilt DC — their redo is about to run under a capped
           low-water mark, and a stale high claim would let mid-redo
           stall-policy flushes over-claim coverage (absorbing the rest
           of the redo as duplicates). *)
        drop_in_flight_for t ~dc_name;
        Hashtbl.iter
          (fun tcn tc ->
            if not (String.equal tcn name) then Tc.on_dc_restart tc ~dc:dc_name)
          t.tcs
      end)
    t.dcs

(* A standby died: rebuild it from its own stable state, then reopen
   every session on a fresh epoch.  Its volatile applied cursors are
   gone, so the hello re-adopts zero and the whole stable stream is
   re-shipped — the abstract-LSN idempotence path absorbs everything
   its stable pages already contain.  When checkpoint truncation has
   passed the rejoin cursor that re-ship is impossible; the manager
   demotes the replica to rebuild-required and it stays crashed-out of
   the replica set (an already rebuild-required replica skips the
   rejoin entirely). *)
let crash_standby t name =
  let e =
    match Hashtbl.find_opt t.standbys name with
    | Some e -> e
    | None -> invalid_arg ("Deploy.crash_standby: unknown " ^ name)
  in
  Hashtbl.iter
    (fun (_, sb) tr ->
      if String.equal sb name then Transport.drop_in_flight tr)
    t.repl_transports;
  (try
     Repl.Standby.crash e.sb_standby;
     Repl.Standby.recover e.sb_standby
   with ex ->
     t.last_faulted <- Some name;
     raise ex);
  Hashtbl.iter
    (fun _ m ->
      if
        List.mem name (Repl.Manager.replica_names m ~primary:e.sb_primary)
        && Repl.Manager.state_of m ~name <> Repl.Manager.Rebuild_required
      then Repl.Manager.reattach m ~name)
    t.managers

exception Promotion_refused of string

(* A candidate is promotable only if EVERY TC's manager can prove its
   acked history reconstructible from its retained log — one TC with a
   truncated suffix is one hole too many. *)
let promotion_eligible t name =
  Hashtbl.fold
    (fun _ m acc -> acc && Repl.Manager.promotion_eligible m ~name)
    t.managers true

let attached_replicas t ~dc =
  List.filter
    (fun name ->
      Hashtbl.fold
        (fun _ m acc ->
          acc && Repl.Manager.state_of m ~name = Repl.Manager.Attached)
        t.managers true)
    (replicas t ~dc)

(* Promote the most-caught-up *eligible* standby in place of a dead
   primary (Section 5.3.2 taken one step further: instead of rebuilding
   the crashed DC's cache by redoing from the redo-scan start point, a
   warm standby already holds the shipped prefix and only the gap to
   end-of-stable-log is re-driven).  Three defenses keep the promotion
   durability-preserving:

   - candidates whose missed suffix the log no longer retains are
     refused ({!Promotion_refused}) — never silently promoted with a
     hole where acked commits used to be;
   - the chosen laggard is caught up from the retained log BEFORE being
     installed (skippable with [~catch_up:false], which leans entirely
     on the TC's redo-below-rssp path instead);
   - the TC's failover redo may start below the redo-scan start point
     when the retained suffix covers it (Tc.on_dc_failover). *)
let fail_over ?(catch_up = true) t ~dc:dc_name =
  let t0 = Metrics.start t.counters in
  drop_in_flight_for t ~dc_name;
  let candidates = replicas t ~dc:dc_name in
  if candidates = [] then
    invalid_arg ("Deploy.fail_over: no standby for " ^ dc_name);
  let eligible = List.filter (promotion_eligible t) candidates in
  if eligible = [] then begin
    Instrument.bump t.counters "repl.promote_refusals";
    Trace.record ~tid:0 ~comp:"repl" ~ev:"refuse"
      [ ("dc", dc_name); ("candidates", string_of_int (List.length candidates)) ];
    raise
      (Promotion_refused
         (Printf.sprintf
            "Deploy.fail_over: no eligible standby for %s (%d candidate(s) \
             cannot prove their acked history retained)"
            dc_name (List.length candidates)))
  end;
  (* among the eligible, rank by exactly-applied LSNs (not the ack
     floor — acks may be in flight), summed across TCs *)
  let caught_up name =
    let sb = (Hashtbl.find t.standbys name).sb_standby in
    Hashtbl.fold
      (fun _ tc acc -> acc + Lsn.to_int (Repl.Standby.applied sb ~tc:(Tc.id tc)))
      t.tcs 0
  in
  let chosen =
    List.fold_left
      (fun best name ->
        match best with
        | Some (_, b) when b >= caught_up name -> best
        | _ -> Some (name, caught_up name))
      None eligible
    |> Option.get |> fst
  in
  let sb = (Hashtbl.find t.standbys chosen).sb_standby in
  (* defense 3: re-ship the retained suffix to the chosen laggard while
     it is still a replica, so it is promoted caught-up and the TC redo
     below shrinks to the (usually empty) post-catch-up gap *)
  if catch_up then
    Hashtbl.iter (fun _ m -> Repl.Manager.catch_up m ~name:chosen) t.managers;
  (* the promoted replica leaves the replica set: it no longer holds
     the truncation floor, and its repl links die with its old role *)
  Hashtbl.iter (fun _ m -> Repl.Manager.remove m ~name:chosen) t.managers;
  Hashtbl.remove t.standbys chosen;
  Hashtbl.iter
    (fun tc_name _ -> Hashtbl.remove t.repl_transports (tc_name, chosen))
    t.tcs;
  (* install the standby's DC under the primary's name — sibling
     replicas and the partition map keep working unchanged — and re-link
     every TC so the old transports' closures over the dead DC are
     dropped with their in-flight frames *)
  Hashtbl.replace t.dcs dc_name (Repl.Standby.dc sb);
  Hashtbl.iter
    (fun tc_name _ -> Hashtbl.remove t.transports (tc_name, dc_name))
    t.tcs;
  Hashtbl.iter (fun tc_name _ -> link t ~tc_name ~dc_name) t.tcs;
  (* the promoted DC answers point-in-time reads like the old primary *)
  if t.layers then wire_history_read t ~dc_name;
  (* each TC re-drives only the gap past the standby's applied LSN *)
  Hashtbl.iter
    (fun _ tc ->
      Tc.on_dc_failover tc ~dc:dc_name
        ~from:(Lsn.next (Repl.Standby.applied sb ~tc:(Tc.id tc))))
    t.tcs;
  Instrument.bump t.counters "repl.promotions";
  Metrics.stop t.counters "repl.promote_ns" t0;
  Trace.record ~tid:0 ~comp:"repl" ~ev:"promote"
    [ ("dc", dc_name); ("standby", chosen) ]

(* Rebuild a replica from layers: a fresh standby is populated with the
   store's materialized state and rejoins at the post-layer suffix — the
   recovery path for a [Rebuild_required] replica whose missed history
   the log no longer retains.  The old replica object is discarded
   entirely (manager entries, repl links); the rebuilt one keeps its
   name.  Returns the number of records installed. *)
let rebuild_replica t name =
  let e =
    match Hashtbl.find_opt t.standbys name with
    | Some e -> e
    | None -> invalid_arg ("Deploy.rebuild_replica: unknown " ^ name)
  in
  if not t.layers then
    invalid_arg "Deploy.rebuild_replica: deployment has no layer stores";
  let primary = e.sb_primary in
  Hashtbl.iter (fun _ m -> Repl.Manager.remove m ~name) t.managers;
  Hashtbl.iter
    (fun tc_name _ -> Hashtbl.remove t.repl_transports (tc_name, name))
    t.tcs;
  let dc_obj = Hashtbl.find t.dcs primary in
  let sb =
    Repl.Standby.create ~counters:t.counters
      (Hashtbl.find t.dc_configs primary)
      ~part:(Dc.part dc_obj)
  in
  (match Hashtbl.find_opt t.dc_tables primary with
  | Some tabs ->
    List.iter
      (fun (tname, versioned) ->
        Dc.create_table (Repl.Standby.dc sb) ~name:tname ~versioned)
      (List.rev !tabs)
  | None -> ());
  let installed =
    Hashtbl.fold
      (fun _ m acc ->
        if Option.is_some (Repl.Manager.layer_store m) then
          acc + Repl.Manager.bootstrap_standby m ~standby:sb ~primary
        else acc)
      t.managers 0
  in
  Hashtbl.replace t.standbys name { sb_standby = sb; sb_primary = primary };
  Hashtbl.iter (fun tc_name _ -> attach_replica t ~tc_name ~sb_name:name) t.tcs;
  Instrument.bump t.counters "deploy.replica_rebuilds";
  installed

(* The user-visible point-in-time read: route the key to its owning DC
   (partition map for partitioned tables, the TC's routing otherwise)
   and answer through the DC's history hook, after freshening every
   store to end-of-stable-log so any [at <= stable] is answerable. *)
let read_as_of ?tc:tc_sel t ~table ~key ~at =
  Hashtbl.iter (fun _ m -> Repl.Manager.sync_layers m) t.managers;
  let dc_name =
    if Hashtbl.mem t.ptables table then partition_dc t ~table ~key
    else begin
      let tc_name =
        match tc_sel with
        | Some n -> n
        | None -> (
          match tc_names t with
          | [ n ] -> n
          | _ -> invalid_arg "Deploy.read_as_of: several TCs; pass ~tc")
      in
      Tc.dc_of_op (tc t tc_name) (Op.Read { table; key; mode = Op.Own })
    end
  in
  Dc.read_as_of (dc t dc_name) ~table ~key ~at

(* ------------------------------------------------------------------ *)
(* Copy-on-write branches                                              *)

exception Branch_has_children of { parent : string; children : string list }

let () =
  Printexc.register_printer (function
    | Branch_has_children { parent; children } ->
      Some
        (Printf.sprintf "Deploy.Branch_has_children { parent = %s; children = %s }"
           parent
           (String.concat ", " children))
    | _ -> None)

(* Branch TCs speak on the same identity plane as root TCs: their ids
   must be fresh, or the ~expect plumbing would let a branch frame land
   under a root TC's idempotence state. *)
let fresh_tc_id t =
  let m =
    Hashtbl.fold (fun _ tc acc -> max acc (Tc_id.to_int (Tc.id tc))) t.tcs 0
  in
  let m =
    Hashtbl.fold
      (fun _ e acc -> max acc (Tc_id.to_int (Tc.id (Branch.tc e.be_branch))))
      t.branches m
  in
  Tc_id.of_int (m + 1)

(* Every table created anywhere in the deployment, deduplicated — the
   schema a root-forked branch serves. *)
let all_tables t =
  let seen = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ tabs ->
      List.iter
        (fun (n, v) ->
          if not (Hashtbl.mem seen n) then Hashtbl.add seen n v)
        !tabs)
    t.dc_tables;
  Hashtbl.fold (fun n v acc -> (n, v) :: acc) seen [] |> List.sort compare

let branch t name =
  match Hashtbl.find_opt t.branches name with
  | Some e -> e.be_branch
  | None -> invalid_arg ("Deploy.branch: unknown branch " ^ name)

let branch_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.branches []
  |> List.sort String.compare

let branch_children t name =
  Hashtbl.fold
    (fun n e acc -> if e.be_parent = Some name then n :: acc else acc)
    t.branches []
  |> List.sort String.compare

let branch_root_tc t name =
  match Hashtbl.find_opt t.branches name with
  | Some e -> e.be_tc
  | None -> invalid_arg ("Deploy.branch_root_tc: unknown branch " ^ name)

let create_branch ?tc:tc_sel ?from t ~from_lsn ~name =
  if not t.layers then
    invalid_arg "Deploy.create_branch: deployment has no layer stores";
  if Hashtbl.mem t.branches name then
    invalid_arg ("Deploy.create_branch: dup branch " ^ name);
  let parent, be_parent, be_tc, tables =
    match from with
    | Some pname ->
      let e =
        match Hashtbl.find_opt t.branches pname with
        | Some e -> e
        | None ->
          invalid_arg ("Deploy.create_branch: unknown parent branch " ^ pname)
      in
      ( Branch.as_parent e.be_branch,
        Some pname,
        e.be_tc,
        Branch.tables e.be_branch )
    | None ->
      let tc_name =
        match tc_sel with
        | Some n -> n
        | None -> (
          match tc_names t with
          | [ n ] -> n
          | _ -> invalid_arg "Deploy.create_branch: several TCs; pass ~tc")
      in
      if not (Hashtbl.mem t.tcs tc_name) then
        invalid_arg ("Deploy.create_branch: unknown TC " ^ tc_name);
      ( Branch.of_manager ~label:tc_name (manager_for t tc_name),
        None,
        tc_name,
        all_tables t )
  in
  (* the branch DC mirrors a primary's tuning; a fresh partition id
     keeps cross-wiring loud (misrouted frames are rejected) *)
  let dc_config =
    match
      Hashtbl.fold (fun n _ a -> n :: a) t.dc_configs []
      |> List.sort String.compare
    with
    | n :: _ -> Hashtbl.find t.dc_configs n
    | [] -> Dc.default_config
  in
  let part = t.next_part in
  t.next_part <- t.next_part + 1;
  let wrap f frame =
    try f frame
    with e ->
      t.last_faulted <- Some name;
      raise e
  in
  let br =
    try
      Branch.create ~counters:t.counters ~policy:t.policy ~seed:(fresh_seed t)
        ~wrap ~name ~fork_lsn:from_lsn ~parent ~tc_id:(fresh_tc_id t)
        ~dc_config ~part ~tables ()
    with Branch.Out_of_range { wanted; durable } ->
      (* the deployment's typed boundary error, same shape everywhere *)
      raise (Out_of_range { wanted; durable })
  in
  Hashtbl.add t.branches name { be_branch = br; be_parent; be_tc };
  br

let delete_branch t name =
  let e =
    match Hashtbl.find_opt t.branches name with
    | Some e -> e
    | None -> invalid_arg ("Deploy.delete_branch: unknown branch " ^ name)
  in
  (match branch_children t name with
  | [] -> ()
  | children -> raise (Branch_has_children { parent = name; children }));
  Branch.close e.be_branch;
  Hashtbl.remove t.branches name

let crash_branch_dc t name = Branch.crash_dc (branch t name)

(* Rebase one root store's history: fold everything below [below] (as
   clamped by live branch pins and the durable watermark) into a
   snapshot layer.  Branch retention is exactly why the pin floor is in
   the clamp — a fork point stays answerable while its branch lives. *)
let truncate_history ?tc:tc_sel t ~below =
  let tc_name =
    match tc_sel with
    | Some n -> n
    | None -> (
      match tc_names t with
      | [ n ] -> n
      | _ -> invalid_arg "Deploy.truncate_history: several TCs; pass ~tc")
  in
  let m = manager_for t tc_name in
  Repl.Manager.sync_layers m;
  match Repl.Manager.layer_store m with
  | Some s -> Layer.truncate_history s ~below
  | None -> invalid_arg "Deploy.truncate_history: no layer store"

let take_last_faulted t =
  let f = t.last_faulted in
  t.last_faulted <- None;
  f

let crash_for_point t ~point ~tc ~dc =
  let rec go attempts point ~dc =
    try
      match Untx_kernel.Kernel.component_of_point point with
      | `Tc ->
        ignore (take_last_faulted t);
        crash_tc t tc
      | `Dc ->
        (* Crash the DC the fault actually escaped from: with N
           partitions, killing a sibling of the one mid-SMO would leave
           a half-done system transaction live in an unrestarted
           cache.  A fault that escaped a standby's apply kills the
           standby, not any primary. *)
        let target = Option.value (take_last_faulted t) ~default:dc in
        if Hashtbl.mem t.branches target then crash_branch_dc t target
        else if Hashtbl.mem t.standbys target then crash_standby t target
        else crash_dc t target
    with Untx_fault.Fault.Injected_crash p when attempts > 0 ->
      go (attempts - 1) p ~dc
  in
  go 8 point ~dc

(* Deployment-wide checkpoint round: every TC advances its own
   redo-scan start point against every DC, in name order so the round
   is deterministic.  No cross-TC floor is needed: watermarks, abstract
   LSNs, the undispatched floor and the DC's grant test are all keyed
   per TC, so one TC's truncation covers only its own log — the
   two-TCs-racing-a-checkpoint regression test pins exactly this.
   Returns whether every TC's checkpoint was granted. *)
let checkpoint_all t =
  List.fold_left
    (fun acc name -> Tc.checkpoint (tc t name) && acc)
    true (tc_names t)

(* Detach/reattach one standby in every manager at once.  Replica state
   is per (TC, standby): each manager holds its own retention lease and
   burns one unit only on its own TC's granted checkpoints, so M TCs do
   not multiply "one" detachment's burn rate — but a deployment-level
   detach must still hit every manager, or the standby would keep
   confirming one TC's stream while silently missing another's. *)
let detach_replica t name =
  if not (Hashtbl.mem t.standbys name) then
    invalid_arg ("Deploy.detach_replica: unknown " ^ name);
  Hashtbl.iter (fun _ m -> Repl.Manager.detach m ~name) t.managers

let reattach_replica t name =
  if not (Hashtbl.mem t.standbys name) then
    invalid_arg ("Deploy.reattach_replica: unknown " ^ name);
  Hashtbl.iter
    (fun _ m ->
      if Repl.Manager.state_of m ~name <> Repl.Manager.Rebuild_required then
        Repl.Manager.reattach m ~name)
    t.managers

let quiesce t =
  Hashtbl.iter (fun _ tc -> Tc.quiesce tc) t.tcs;
  (* replication parity is part of a quiesced replicated deployment:
     every standby has confirmed end-of-stable-log.  Non-replicated
     deployments are untouched (no extra log force). *)
  if Hashtbl.length t.managers > 0 then begin
    Hashtbl.iter (fun _ tc -> Tc.force_log tc) t.tcs;
    Hashtbl.iter (fun _ m -> Repl.Manager.settle m) t.managers
  end;
  Hashtbl.iter (fun _ e -> Branch.quiesce e.be_branch) t.branches

let messages_total t =
  Hashtbl.fold
    (fun _ transport acc -> acc + Transport.requests_delivered transport)
    t.transports 0
