module Instrument = Untx_util.Instrument
module Transport = Untx_kernel.Transport
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc

type t = {
  counters : Instrument.t;
  policy : Transport.policy;
  mutable seed : int;
  dcs : (string, Dc.t) Hashtbl.t;
  tcs : (string, Tc.t) Hashtbl.t;
  transports : (string * string, Transport.t) Hashtbl.t; (* (tc, dc) *)
}

let create ?(counters = Instrument.global) ?(policy = Transport.reliable)
    ?(seed = 42) () =
  {
    counters;
    policy;
    seed;
    dcs = Hashtbl.create 4;
    tcs = Hashtbl.create 4;
    transports = Hashtbl.create 8;
  }

let fresh_seed t =
  t.seed <- t.seed + 7919;
  t.seed

let link t ~tc_name ~dc_name =
  if not (Hashtbl.mem t.transports (tc_name, dc_name)) then begin
    let dc = Hashtbl.find t.dcs dc_name in
    (* Each (TC, DC) pair gets its own two-channel byte plane; control
       traffic rides the same adversary as data. *)
    let transport =
      Transport.create ~counters:t.counters ~policy:t.policy
        ~seed:(fresh_seed t)
        ~data:(Dc.handle_request_frame dc)
        ~control:(Dc.handle_control_frame dc)
        ()
    in
    Hashtbl.add t.transports (tc_name, dc_name) transport;
    let tc = Hashtbl.find t.tcs tc_name in
    Tc.attach_dc tc
      {
        Tc.dc_name;
        send = Transport.send transport;
        send_control = Transport.send_control transport;
        drain = (fun () -> Transport.drain transport);
      }
  end

let add_dc t ~name config =
  if Hashtbl.mem t.dcs name then invalid_arg ("Deploy.add_dc: dup " ^ name);
  let dc = Dc.create ~counters:t.counters config in
  Hashtbl.add t.dcs name dc;
  Hashtbl.iter (fun tc_name _ -> link t ~tc_name ~dc_name:name) t.tcs;
  dc

let add_tc t ~name config =
  if Hashtbl.mem t.tcs name then invalid_arg ("Deploy.add_tc: dup " ^ name);
  let tc = Tc.create ~counters:t.counters config in
  Hashtbl.add t.tcs name tc;
  Hashtbl.iter (fun dc_name _ -> link t ~tc_name:name ~dc_name) t.dcs;
  tc

let tc t name = Hashtbl.find t.tcs name

let dc t name = Hashtbl.find t.dcs name

let tc_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.tcs [] |> List.sort String.compare

let dc_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.dcs [] |> List.sort String.compare

let create_table t ~dc:dc_name ~name ~versioned =
  Dc.create_table (dc t dc_name) ~name ~versioned

let drop_in_flight_for t ~dc_name =
  Hashtbl.iter
    (fun (_, d) transport ->
      if String.equal d dc_name then Transport.drop_in_flight transport)
    t.transports

let crash_dc t name =
  let dc = dc t name in
  drop_in_flight_for t ~dc_name:name;
  Dc.crash dc;
  Dc.recover dc;
  (* Prompt every TC: each resends its own history (the DC's per-TC
     abstract LSNs absorb what survived on stable pages). *)
  Hashtbl.iter (fun _ tc -> Tc.on_dc_restart tc ~dc:name) t.tcs

let crash_tc t name =
  let tc_obj = tc t name in
  Hashtbl.iter
    (fun (tcn, _) transport ->
      if String.equal tcn name then Transport.drop_in_flight transport)
    t.transports;
  Tc.crash tc_obj;
  Tc.recover tc_obj;
  (* A DC that turned the partial failure into its own complete one —
     draconian mode, or a selective reset that had to escalate — lost
     other TCs' unflushed work: they must redo. *)
  Hashtbl.iter
    (fun dc_name dc ->
      if Dc.take_escalation dc then begin
        Instrument.bump t.counters "deploy.escalation_redo";
        (* The complete restart killed the DC's sockets: frames in flight
           to or from it died with them, exactly as in [crash_dc].  In
           particular the other TCs' pre-crash watermarks must not reach
           the rebuilt DC — their redo is about to run under a capped
           low-water mark, and a stale high claim would let mid-redo
           stall-policy flushes over-claim coverage (absorbing the rest
           of the redo as duplicates). *)
        drop_in_flight_for t ~dc_name;
        Hashtbl.iter
          (fun tcn tc ->
            if not (String.equal tcn name) then Tc.on_dc_restart tc ~dc:dc_name)
          t.tcs
      end)
    t.dcs

let crash_for_point t ~point ~tc ~dc =
  let rec go attempts point =
    try
      match Untx_kernel.Kernel.component_of_point point with
      | `Tc -> crash_tc t tc
      | `Dc -> crash_dc t dc
    with Untx_fault.Fault.Injected_crash p when attempts > 0 ->
      go (attempts - 1) p
  in
  go 8 point

let quiesce t = Hashtbl.iter (fun _ tc -> Tc.quiesce tc) t.tcs

let messages_total t =
  Hashtbl.fold
    (fun _ transport acc -> acc + Transport.requests_delivered transport)
    t.transports 0
