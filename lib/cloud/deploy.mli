(** Multi-TC / multi-DC deployments (Figure 1 at full generality,
    Section 6).

    A deployment owns any number of TCs and DCs and the transports
    between them.  TCs may share a DC: the DC keys its idempotence state
    per TC (Section 6.1), and applications keep updaters on disjoint
    partitions while readers use the lock-free sharing modes of
    Section 6.2.  Nothing here is a distributed transaction — each TC's
    log remains the single commit point for its transactions, even when
    they span several DCs. *)

type t

(** How a partitioned table spreads keys over its DCs. *)
type scheme =
  | Hash  (** stable FNV hash of the key, mod partition count *)
  | Range of string list
      (** N-1 ordered split keys; partition [i+1] starts at split [i].
          Scans stay inside one partition when their prefix pins it. *)

val create :
  ?counters:Untx_util.Instrument.t ->
  ?policy:Untx_kernel.Transport.policy ->
  ?durability:Untx_repl.Repl.durability ->
  ?layers:bool ->
  ?seed:int ->
  unit ->
  t
(** [durability] (default [Primary_only]) governs every replicated
    primary: under [Quorum k] commit acknowledgements wait for [k]
    standby acks per replicated partition.

    [layers] (default [false]) runs every TC's shipping manager on an
    {!Untx_layer} store ({!Untx_repl.Repl.Manager.enable_layers}):
    checkpoint truncation floors at the store's durable watermark
    instead of the slowest detached replica's cursor, failover can redo
    below the retained log head from layers, fresh standbys bootstrap
    from materialized state, and {!read_as_of} answers point-in-time
    lookups. *)

val add_dc : t -> name:string -> Untx_dc.Dc.config -> Untx_dc.Dc.t
(** The DC is assigned the next partition id ({!Untx_dc.Dc.part}) and
    linked to every TC present and TCs added later. *)

val add_tc : t -> name:string -> Untx_tc.Tc.config -> Untx_tc.Tc.t
(** The TC is linked (via its own transport) to every DC present and to
    DCs added later. *)

val tc : t -> string -> Untx_tc.Tc.t

val dc : t -> string -> Untx_dc.Dc.t

val tc_names : t -> string list

val dc_names : t -> string list

val create_table :
  t -> dc:string -> name:string -> versioned:bool -> unit
(** Create the physical table at one DC (idempotent). *)

val add_partitioned_table :
  t ->
  ?scheme:scheme ->
  ?replicas:int ->
  name:string ->
  versioned:bool ->
  dcs:string list ->
  unit ->
  unit
(** Register a table partitioned over [dcs] (default {!Hash}): the
    physical table is created at each listed DC, and every TC — present
    or added later — routes each key to its owning partition.  The map
    is static and deterministic, so redo after any crash ships every
    logical log record back to the same DC that first applied it.
    [replicas] (default 0) gives every owning partition that many warm
    standbys fed by continuous redo shipping ({!Untx_repl.Repl}). *)

val add_indexed_table :
  t ->
  ?scheme:scheme ->
  ?replicas:int ->
  idx:Untx_index.Index.t ->
  name:string ->
  versioned:bool ->
  dcs:string list ->
  indexes:(string * Untx_index.Index.extract) list ->
  unit ->
  unit
(** {!add_partitioned_table} for a table carrying secondary indexes:
    registers each [(index name, extract)] in [idx], the primary table
    under [scheme], and one entry table per index
    ({!Untx_index.Index.index_table}) under {e secondary-hash}
    placement — entry keys are partitioned by the hash of their decoded
    secondary-key component, so every entry for one secondary key lives
    on one partition and an {!Untx_index.Index.lookup} prefix scan
    never crosses DCs.  Entry tables share the primary's versioned-ness
    and [replicas]; being ordinary partitioned tables, redo,
    checkpoints, replication, failover and multi-TC sharing treat them
    exactly like the primary.  Index maintenance itself is the caller's
    contract: mutate the table through {!Untx_index.Index.insert}/
    [update]/[delete] with [idx]. *)

val partition_dc : t -> table:string -> key:string -> string
(** The DC owning [key] under the table's partition map. *)

val partitions : t -> table:string -> string list
(** The owning DCs of a partitioned table, in partition-id order. *)

val crash_dc : t -> string -> unit
(** Crash + recover the DC, then drive redo from every TC (each resends
    its own logged operations from its redo-scan start point). *)

val crash_tc : t -> string -> unit
(** Crash + restart one TC.  Other TCs are untouched: the DCs reset only
    the failed TC's lost operations (record-granular on shared pages). *)

(** {2 Replication (warm standbys per partition)} *)

val add_replica : t -> dc:string -> string
(** Mint a warm standby for the named primary (config and partition id
    copied from it, schema mirrored), wire a repl-only transport from
    every TC, and start shipping.  Returns the standby's name
    (["<dc>~r<i>"]). *)

val add_replicas : t -> dc:string -> n:int -> string list
(** Top the primary's replica set up to [n] standbys; returns the names
    of the ones added. *)

val replicas : t -> dc:string -> string list
(** The standbys currently shadowing a primary, sorted by name. *)

val standby : t -> string -> Untx_repl.Repl.Standby.t

val manager : t -> tc:string -> Untx_repl.Repl.Manager.t
(** The named TC's shipping engine (created on first use; its creation
    installs the durability gate and truncate floor on the TC). *)

val settle_replicas : t -> unit
(** Ship and pump until every attached standby confirms its TC's
    end-of-stable-log. *)

val crash_standby : t -> string -> unit
(** Crash + recover one standby, then reattach it on a fresh session
    epoch: its applied cursors are volatile, so the whole stable stream
    re-ships and the idempotence path absorbs what survived.  If
    checkpoint truncation already passed the rejoin cursor the re-ship
    is impossible: the manager demotes the replica to rebuild-required
    and it stays out of the replica set.  An already rebuild-required
    replica just crashes without the rejoin. *)

val attached_replicas : t -> dc:string -> string list
(** The subset of {!replicas} attached in every manager — the ones
    actively shadowing the primary.  Detached and rebuild-required
    replicas legitimately trail it (parity audits skip them). *)

exception Promotion_refused of string
(** {!fail_over} found candidates but none whose acked history is
    provably reconstructible from the retained log.  Refusal is the
    durability-preserving outcome: the operator falls back to a cold
    restart of the primary ({!crash_dc}) instead of losing commits.
    Counted as ["repl.promote_refusals"]. *)

val fail_over : ?catch_up:bool -> t -> dc:string -> unit
(** The primary died: promote its most-caught-up {e eligible} standby
    (exact applied LSNs, summed across TCs; eligibility per
    {!Untx_repl.Repl.Manager.promotion_eligible} in every manager),
    install it under the primary's name, re-link every TC, and re-drive
    only the gap from the standby's applied LSN to end-of-stable-log
    ({!Untx_tc.Tc.on_dc_failover}).  With [catch_up] (default [true])
    the chosen laggard is first caught up from the retained stable log
    while still a replica, so the TC redo shrinks to the post-catch-up
    gap; [~catch_up:false] promotes it frozen and leans entirely on the
    TC's redo — which may legally start below the redo-scan start point
    when the suffix is retained.  Raises {!Promotion_refused} when no
    candidate is eligible.  Counted as ["repl.promotions"]; timed as
    ["repl.promote_ns"]. *)

val rebuild_replica : t -> string -> int
(** Rebuild the named replica from layers: discard the old standby
    object entirely, mint a fresh one from the primary's config and
    schema, install the layer store's materialized current state
    ({!Untx_repl.Repl.Manager.bootstrap_standby}), and reattach so only
    the post-layer suffix ships — the recovery path for a
    rebuild-required replica whose missed history the log no longer
    retains.  Returns the number of records installed.  Raises
    [Invalid_argument] for unknown replicas or deployments created
    without [~layers:true]. *)

exception Out_of_range of { wanted : Untx_util.Lsn.t; durable : Untx_util.Lsn.t }
(** A point-in-time read or fork point beyond every store's ingest
    watermark: [wanted] exceeds [durable], the highest answerable LSN.
    Typed (mirroring [Wal.Truncated {wanted; retained}]) so callers can
    tell unanswerable-at-[at] from a legitimate absent-at-[at] [None]. *)

val read_as_of :
  ?tc:string ->
  t ->
  table:string ->
  key:string ->
  at:Untx_util.Lsn.t ->
  string option
(** Point-in-time read: the key's visible value after every logged
    operation at or below [at] — [None] if absent or deleted there.
    Routed to the owning DC (partition map, or [~tc]'s routing for
    unpartitioned tables; [~tc] may be omitted with a single TC) and
    answered through its history hook ({!Untx_dc.Dc.read_as_of}) backed
    by the layer store's [reconstruct].  Every store is synced to
    end-of-stable-log first, so any [at <= stable_lsn] is answerable.
    Raises {!Out_of_range} when [at] is beyond every store's ingest
    watermark — never a silent [None] — and
    [Untx_layer.Layer.History_truncated] when [at] sits below a rebased
    store's {!truncate_history} cut.  Requires [~layers:true]. *)

(** {2 Copy-on-write branches (layered deployments)} *)

exception Branch_has_children of { parent : string; children : string list }
(** {!delete_branch} refused: the named branch is still the parent of
    live branches — deleting it would unpin history its children
    resolve through.  Delete the children first. *)

val create_branch :
  ?tc:string ->
  ?from:string ->
  t ->
  from_lsn:Untx_util.Lsn.t ->
  name:string ->
  Untx_branch.Branch.t
(** Fork the deployment at [from_lsn]: the branch gets its own TC
    (fresh identity on the deployment's ~expect plane), DC (fresh
    partition id), transport and layer store, while everything at or
    below [from_lsn] stays shared with the parent under a retention pin
    ({!Untx_branch.Branch}).  No data is copied — fork cost is
    O(metadata), timed as ["branch.fork_ns"].  The parent is [~from]'s
    branch when given (nesting; [from_lsn] is then in that branch's
    combined LSN space), else [~tc]'s root layer store ([~tc] may be
    omitted with a single TC; the branch serves every table created in
    the deployment).  Raises {!Out_of_range} when [from_lsn] exceeds
    the parent's ingest watermark, [Invalid_argument] for duplicate
    names or deployments without [~layers:true]. *)

val branch : t -> string -> Untx_branch.Branch.t

val branch_names : t -> string list

val branch_children : t -> string -> string list
(** The live branches forked directly off the named branch. *)

val branch_root_tc : t -> string -> string
(** The root TC whose (combined) LSN space the named branch addresses. *)

val delete_branch : t -> string -> unit
(** Close the branch and release its fork-point pin, letting parent
    truncation pass it.  Raises {!Branch_has_children} while the branch
    still has live children — never silently unpins history someone
    resolves through — and [Invalid_argument] for unknown names. *)

val crash_branch_dc : t -> string -> unit
(** Crash + recover the named branch's DC and redo from its TC — the
    single-DC restart scoped to the branch; the parent is untouched. *)

val truncate_history : ?tc:string -> t -> below:Untx_util.Lsn.t -> int
(** Rebase [~tc]'s layer store ({!Untx_layer.Layer.truncate_history}):
    fold history below [below] — as clamped by live branch fork-point
    pins and the durable watermark — into a snapshot layer.  Returns
    entries reclaimed. *)

val crash_for_point : t -> point:string -> tc:string -> dc:string -> unit
(** Kill whichever component owns the fault point (see
    {!Untx_kernel.Kernel.component_of_point}): a TC-side point crashes
    the named TC; a DC-side point crashes the DC whose handler the
    injected fault actually escaped from (falling back to the named
    [dc]) — with N partitions the dying component is whichever DC was
    mid-operation, not whichever a plan named.  Plans that fire again
    during recovery crash the restarted component in turn (bounded). *)

val checkpoint_all : t -> bool
(** One deployment-wide checkpoint round: every TC checkpoints (in name
    order), each truncating only its own log.  Per-TC keying of
    watermarks, abstract LSNs and grant tests means no cross-TC floor
    is required — one TC's granted checkpoint can never cover another
    TC's unstable operations.  Returns whether every TC was granted. *)

val detach_replica : t -> string -> unit
(** Detach the named standby in {e every} TC's manager (replica state
    is per (TC, standby)).  Each manager's retention lease burns only on
    its own TC's granted checkpoints, so a deployment of M TCs gives a
    detached standby M independent leases — consults from different TCs
    never decrement each other's. *)

val reattach_replica : t -> string -> unit
(** Reattach the named standby in every manager that has not demoted it
    to rebuild-required (those keep refusing it, as
    {!Untx_repl.Repl.Manager.reattach} demands). *)

val quiesce : t -> unit

val messages_total : t -> int
(** Requests delivered across all transports. *)
