(** Multi-TC / multi-DC deployments (Figure 1 at full generality,
    Section 6).

    A deployment owns any number of TCs and DCs and the transports
    between them.  TCs may share a DC: the DC keys its idempotence state
    per TC (Section 6.1), and applications keep updaters on disjoint
    partitions while readers use the lock-free sharing modes of
    Section 6.2.  Nothing here is a distributed transaction — each TC's
    log remains the single commit point for its transactions, even when
    they span several DCs. *)

type t

val create :
  ?counters:Untx_util.Instrument.t ->
  ?policy:Untx_kernel.Transport.policy ->
  ?seed:int ->
  unit ->
  t

val add_dc : t -> name:string -> Untx_dc.Dc.config -> Untx_dc.Dc.t

val add_tc : t -> name:string -> Untx_tc.Tc.config -> Untx_tc.Tc.t
(** The TC is linked (via its own transport) to every DC present and to
    DCs added later. *)

val tc : t -> string -> Untx_tc.Tc.t

val dc : t -> string -> Untx_dc.Dc.t

val tc_names : t -> string list

val dc_names : t -> string list

val create_table :
  t -> dc:string -> name:string -> versioned:bool -> unit
(** Create the physical table at one DC (idempotent). *)

val crash_dc : t -> string -> unit
(** Crash + recover the DC, then drive redo from every TC (each resends
    its own logged operations from its redo-scan start point). *)

val crash_tc : t -> string -> unit
(** Crash + restart one TC.  Other TCs are untouched: the DCs reset only
    the failed TC's lost operations (record-granular on shared pages). *)

val crash_for_point : t -> point:string -> tc:string -> dc:string -> unit
(** Kill whichever component owns the fault point (see
    {!Untx_kernel.Kernel.component_of_point}): a TC-side point crashes
    the named TC, a DC-side point the named DC.  Plans that fire again
    during recovery crash the restarted component in turn (bounded). *)

val quiesce : t -> unit

val messages_total : t -> int
(** Requests delivered across all transports. *)
