module Tc = Untx_tc.Tc
module Instrument = Untx_util.Instrument

type extract = key:string -> value:string -> string list

type t = {
  counters : Instrument.t;
  defs : (string, (string * extract) list ref) Hashtbl.t;
      (* table -> (index name, extract), kept sorted by name *)
}

let create ?(counters = Instrument.global) () =
  { counters; defs = Hashtbl.create 4 }

let index_table ~table ~name = table ^ "#" ^ name

let define t ~table ~name ~extract =
  let defs =
    match Hashtbl.find_opt t.defs table with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t.defs table r;
      r
  in
  if List.mem_assoc name !defs then
    invalid_arg
      (Printf.sprintf "Index.define: dup index %s on %s" name table);
  defs :=
    List.sort (fun (a, _) (b, _) -> String.compare a b)
      ((name, extract) :: !defs)

let defs_of t table =
  match Hashtbl.find_opt t.defs table with Some r -> !r | None -> []

let indexes t ~table = List.map fst (defs_of t table)

(* ------------------------------------------------------------------ *)
(* Entry encoding                                                      *)

(* Escape [\x00] to [\x00\xff]: order-preserving, and the pair is the
   only way a NUL can appear inside an escaped component.  The
   two-byte terminator [\x00\x01] that follows can therefore never
   occur inside one — the first occurrence in an entry key always
   marks the component boundary, whatever bytes the primary key
   holds. *)
let esc s =
  if not (String.contains s '\x00') then s
  else begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        Buffer.add_char b c;
        if c = '\x00' then Buffer.add_char b '\xff')
      s;
    Buffer.contents b
  end

let unesc s =
  if not (String.contains s '\x00') then s
  else begin
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      Buffer.add_char b s.[!i];
      if s.[!i] = '\x00' && !i + 1 < n && s.[!i + 1] = '\xff' then incr i;
      incr i
    done;
    Buffer.contents b
  end

let terminator = "\x00\x01"

let prefix ~sec = esc sec ^ terminator

let entry_key ~sec ~pk = prefix ~sec ^ pk

(* First occurrence of the terminator, or None for a bare key. *)
let split_entry ek =
  let n = String.length ek in
  let rec go i =
    if i + 1 >= n then None
    else if ek.[i] = '\x00' && ek.[i + 1] = '\x01' then Some i
    else go (i + 1)
  in
  go 0

let sec_of_entry ek =
  match split_entry ek with
  | Some i -> unesc (String.sub ek 0 i)
  | None -> unesc ek

let pk_of_entry ek =
  match split_entry ek with
  | Some i -> String.sub ek (i + 2) (String.length ek - i - 2)
  | None -> ""

(* ------------------------------------------------------------------ *)
(* Transactional maintenance                                           *)

let ( let* ) (o : _ Tc.outcome) f : _ Tc.outcome =
  match o with `Ok v -> f v | (`Blocked | `Fail _) as e -> e

let rec each f = function
  | [] -> `Ok ()
  | x :: rest -> (
    match (f x : _ Tc.outcome) with
    | `Ok () -> each f rest
    | (`Blocked | `Fail _) as e -> e)

let secs_of extract ~key ~value =
  List.sort_uniq String.compare (extract ~key ~value)

let add_entries t tc txn ~table ~key ~value defs =
  each
    (fun (name, extract) ->
      let itab = index_table ~table ~name in
      each
        (fun sec ->
          Instrument.bump t.counters "idx.entry_inserts";
          Tc.insert tc txn ~table:itab ~key:(entry_key ~sec ~pk:key)
            ~value:key)
        (secs_of extract ~key ~value))
    defs

let drop_entries t tc txn ~table ~key ~value defs =
  each
    (fun (name, extract) ->
      let itab = index_table ~table ~name in
      each
        (fun sec ->
          Instrument.bump t.counters "idx.entry_deletes";
          Tc.delete tc txn ~table:itab ~key:(entry_key ~sec ~pk:key))
        (secs_of extract ~key ~value))
    defs

let insert t tc txn ~table ~key ~value =
  let* () = Tc.insert tc txn ~table ~key ~value in
  add_entries t tc txn ~table ~key ~value (defs_of t table)

(* The old value decides which entries go stale; only the symmetric
   difference is touched, so an update that leaves an index's secondary
   key unchanged costs that index nothing. *)
let update t tc txn ~table ~key ~value =
  let* old = Tc.read tc txn ~table ~key in
  match old with
  | None -> `Fail (Printf.sprintf "Index.update: no such key %s/%s" table key)
  | Some old_value ->
    let* () = Tc.update tc txn ~table ~key ~value in
    each
      (fun (name, extract) ->
        let itab = index_table ~table ~name in
        let old_secs = secs_of extract ~key ~value:old_value in
        let new_secs = secs_of extract ~key ~value in
        let* () =
          each
            (fun sec ->
              Instrument.bump t.counters "idx.entry_deletes";
              Tc.delete tc txn ~table:itab ~key:(entry_key ~sec ~pk:key))
            (List.filter (fun s -> not (List.mem s new_secs)) old_secs)
        in
        each
          (fun sec ->
            Instrument.bump t.counters "idx.entry_inserts";
            Tc.insert tc txn ~table:itab ~key:(entry_key ~sec ~pk:key)
              ~value:key)
          (List.filter (fun s -> not (List.mem s old_secs)) new_secs))
      (defs_of t table)

let delete t tc txn ~table ~key =
  let* old = Tc.read tc txn ~table ~key in
  let* () = Tc.delete tc txn ~table ~key in
  match old with
  | None -> `Ok ()
  | Some value -> drop_entries t tc txn ~table ~key ~value (defs_of t table)

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

let batch = 32

let each_map xs f =
  let rec go acc = function
    | [] -> `Ok (List.rev acc)
    | x :: rest -> (
      match (f x : _ Tc.outcome) with
      | `Ok y -> go (y :: acc) rest
      | (`Blocked | `Fail _) as e -> e)
  in
  go [] xs

let lookup t tc txn ~table ~index ~sec =
  if not (List.mem_assoc index (defs_of t table)) then
    invalid_arg
      (Printf.sprintf "Index.lookup: no index %s on %s" index table);
  let extract = List.assoc index (defs_of t table) in
  let itab = index_table ~table ~name:index in
  let pfx = prefix ~sec in
  Instrument.bump t.counters "idx.lookups";
  (* Secondary-hash placement keeps every key with this prefix on one
     partition, so the batched scan never has to cross DCs. *)
  let rec collect acc from_key =
    let* rows = Tc.scan tc txn ~table:itab ~from_key ~limit:batch in
    let mine =
      List.filter (fun (k, _) -> String.starts_with ~prefix:pfx k) rows
    in
    let acc = acc @ mine in
    if List.length rows < batch || List.length mine < List.length rows then
      `Ok acc
    else
      let last, _ = List.nth rows (List.length rows - 1) in
      collect acc (last ^ "\x00")
  in
  let* entries = collect [] pfx in
  each_map entries
    (fun (ek, ev) ->
      let pk = pk_of_entry ek in
      if not (String.equal ev pk) then
        `Fail
          (Printf.sprintf "Index.lookup: entry %s/%s carries value %S, not \
                           its primary key %S"
             itab index ev pk)
      else
        let* v = Tc.read tc txn ~table ~key:pk in
        match v with
        | None ->
          Instrument.bump t.counters "idx.dangling";
          `Fail
            (Printf.sprintf
               "Index.lookup: dangling entry in %s: no %s/%s record" itab
               table pk)
        | Some value ->
          if not (List.mem sec (secs_of extract ~key:pk ~value)) then begin
            Instrument.bump t.counters "idx.dangling";
            `Fail
              (Printf.sprintf
                 "Index.lookup: stale entry in %s: %s/%s no longer extracts \
                  to %S"
                 itab table pk sec)
          end
          else begin
            Instrument.bump t.counters "idx.lookup_rows";
            `Ok (pk, value)
          end)

(* ------------------------------------------------------------------ *)
(* Parity                                                              *)

let expected_entries t ~table ~index ~rows =
  let extract =
    match List.assoc_opt index (defs_of t table) with
    | Some e -> e
    | None ->
      invalid_arg
        (Printf.sprintf "Index.expected_entries: no index %s on %s" index
           table)
  in
  List.concat_map
    (fun (key, value) ->
      List.map
        (fun sec -> (entry_key ~sec ~pk:key, key))
        (secs_of extract ~key ~value))
    rows
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
