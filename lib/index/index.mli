(** Secondary-index maintenance as logical multi-record operations.

    The paper's record-oriented TC/DC interface (Section 3) has no
    notion of an index: the DC serves exactly one B-tree per table.
    This module builds secondary indexes {e on top of} that interface —
    an index is just another table whose records are order-preserving
    encodings of [(secondary key, primary key)], and maintaining it is
    ordinary transactional work:

    - every entry mutation travels through the normal TC dispatch path
      {e inside the same user transaction} as the primary-record
      mutation it mirrors (logical multi-record operations, the
      Tarantool HASH/TREE-secondary-key shape), so commit makes the
      record and its entries atomically visible and abort rolls both
      back through the ordinary compensation path;
    - index {e structure} changes (page splits, consolidations) remain
      system transactions inside the DC, exactly as for any table —
      nothing here knows about pages.

    Because entries are ordinary records, every existing mechanism
    applies unchanged: logical redo ships entries to their owning
    partition, idempotent replay covers them, replicas mirror them, and
    the post-crash auditor can hold them to parity with the primary
    table ({!expected_entries}).

    {b Contract.}  A [`Fail] from any wrapper leaves the transaction
    with a partially applied multi-record operation; the caller must
    abort the whole transaction (rollback undoes every applied piece).
    Under the [Optimistic] protocol, reads do not observe the
    transaction's own buffered writes, so an indexed transaction must
    touch each primary key at most once. *)

module Tc := Untx_tc.Tc

type extract = key:string -> value:string -> string list
(** Computes a record's secondary keys.  Must be deterministic; the
    returned list is deduplicated.  An empty list means the record has
    no entries in that index. *)

type t
(** A registry of index definitions (which tables carry which indexes).
    Pure routing metadata — no record state lives here. *)

val create : ?counters:Untx_util.Instrument.t -> unit -> t

val define : t -> table:string -> name:string -> extract:extract -> unit
(** Register index [name] on [table].  The entry table
    ({!index_table}) must be created/mapped by the caller (or
    {!Untx_cloud.Deploy.add_indexed_table}) with the same versioned-ness
    as the primary.  Raises [Invalid_argument] on duplicate names. *)

val indexes : t -> table:string -> string list
(** The names of the indexes defined on [table], sorted. *)

val index_table : table:string -> name:string -> string
(** The entry table's name, ["<table>#<name>"]. *)

(** {2 Entry encoding}

    An entry's key is an order-preserving encoding of
    [(secondary key, primary key)]: the secondary key with every
    [\x00] byte escaped to [\x00\xff], a [\x00\x01] terminator, then
    the primary key verbatim.  Entries sharing a secondary key are
    exactly the keys with prefix {!prefix} — no other secondary key's
    entries can fall inside it — so one range scan answers a lookup.
    The entry's value is the primary key (redundantly, for audits). *)

val entry_key : sec:string -> pk:string -> string

val prefix : sec:string -> string
(** All of [sec]'s entries, and nothing else, start with this. *)

val sec_of_entry : string -> string
(** The decoded secondary-key component.  Total: a key with no
    terminator decodes as one bare secondary key (this is what
    secondary-hash partition maps feed on, including scan cursors). *)

val pk_of_entry : string -> string

(** {2 Transactional maintenance}

    Drop-in replacements for [Tc.insert]/[Tc.update]/[Tc.delete] on an
    indexed table: the primary operation plus every entry mutation it
    implies, all inside [txn].  Outcomes short-circuit left to right;
    see the module contract about [`Fail]. *)

val insert :
  t -> Tc.t -> Tc.txn -> table:string -> key:string -> value:string ->
  unit Tc.outcome

val update :
  t -> Tc.t -> Tc.txn -> table:string -> key:string -> value:string ->
  unit Tc.outcome
(** Reads the old value first (to diff old vs new entries); fails fast
    with ["no such key"] when the record is absent, on versioned and
    unversioned tables alike. *)

val delete :
  t -> Tc.t -> Tc.txn -> table:string -> key:string -> unit Tc.outcome
(** Deleting an absent key is an [`Ok] no-op with no entry traffic,
    mirroring [Tc.delete]. *)

val lookup :
  t -> Tc.t -> Tc.txn -> table:string -> index:string -> sec:string ->
  (string * string) list Tc.outcome
(** Every primary record whose [index] extraction includes [sec], as
    [(primary key, value)] in primary-key order: one batched range scan
    over the entry prefix, then a read of each named primary record.
    An entry whose primary record is missing, or whose record no longer
    extracts to [sec], is corruption and fails loudly. *)

(** {2 Parity (for audits)} *)

val expected_entries :
  t -> table:string -> index:string -> rows:(string * string) list ->
  (string * string) list
(** The exact [(entry key, entry value)] rows the entry table must hold
    when the primary table holds [rows] — the oracle side of the
    index↔primary parity audit ({!Untx_audit.Audit.check_index}). *)
