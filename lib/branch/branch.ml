module Instrument = Untx_util.Instrument
module Lsn = Untx_util.Lsn
module Tc_id = Untx_util.Tc_id
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace
module Transport = Untx_kernel.Transport
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Repl = Untx_repl.Repl
module Layer = Untx_layer.Layer

exception Out_of_range of { wanted : Lsn.t; durable : Lsn.t }

let () =
  Printexc.register_printer (function
    | Out_of_range { wanted; durable } ->
      Some
        (Printf.sprintf "Branch.Out_of_range { wanted = %s; durable = %s }"
           (Lsn.to_string wanted) (Lsn.to_string durable))
    | _ -> None)

type parent = {
  p_label : string;
  p_high : unit -> Lsn.t;
  p_lookup :
    table:string ->
    key:string ->
    at:Lsn.t ->
    [ `Visible of string | `Gone | `Unwritten ];
  p_iter_at : at:Lsn.t -> (table:string -> key:string -> string -> unit) -> unit;
  p_pin : at:Lsn.t -> unit;
  p_unpin : at:Lsn.t -> unit;
}

let of_manager ?(label = "root") m =
  let store () =
    match Repl.Manager.layer_store m with
    | Some s -> s
    | None -> invalid_arg "Branch.of_manager: manager has no layer store"
  in
  {
    p_label = label;
    p_high =
      (fun () ->
        Repl.Manager.sync_layers m;
        Layer.ingested_lsn (store ()));
    p_lookup =
      (fun ~table ~key ~at ->
        Repl.Manager.sync_layers m;
        Layer.lookup (store ()) ~table ~key ~at);
    p_iter_at =
      (fun ~at f ->
        Repl.Manager.sync_layers m;
        Layer.iter_at (store ()) ~at f);
    p_pin = (fun ~at -> Layer.pin (store ()) ~at);
    p_unpin = (fun ~at -> Layer.unpin (store ()) ~at);
  }

type t = {
  name : string;
  fork_lsn : Lsn.t;
  parent : parent;
  counters : Instrument.t;
  tc : Tc.t;
  dc : Dc.t;
  dc_name : string;
  transport : Transport.t;
  mgr : Repl.Manager.t;
  tbls : (string * bool) list;
  materialized : (string * string, unit) Hashtbl.t;
      (* keys whose fork-point base state was faulted in (or proven
         absent there).  Lives here, not in the DC: it mirrors logged
         traffic, so it legitimately survives a branch DC crash. *)
  full_tables : (string, unit) Hashtbl.t;
  mutable closed : bool;
}

let create ?(counters = Instrument.global) ?(policy = Transport.reliable)
    ?(seed = 42) ?(wrap = fun f frame -> f frame) ~name ~fork_lsn ~parent
    ~tc_id ~dc_config ~part ~tables () =
  let high = parent.p_high () in
  if Lsn.(high < fork_lsn) then
    raise (Out_of_range { wanted = fork_lsn; durable = high });
  let t0 = Metrics.start counters in
  (* The pin is the whole fork: the parent's compaction/truncation may
     never drop a layer the branch still resolves through.  Nothing is
     copied — base state faults in lazily, per touched key. *)
  parent.p_pin ~at:fork_lsn;
  let tc = Tc.create ~counters (Tc.default_config tc_id) in
  let dc = Dc.create ~counters dc_config in
  Dc.set_identity dc ~part;
  let dc_name = name ^ ".dc" in
  let expect = Tc.id tc in
  let transport =
    Transport.create ~counters ~policy ~label:(name ^ ":" ^ dc_name) ~seed
      ~data:(wrap (Dc.handle_request_frame ~expect dc))
      ~control:(wrap (Dc.handle_control_frame ~expect dc))
      ()
  in
  Tc.attach_dc tc
    {
      Tc.dc_name;
      part;
      send = Transport.send transport;
      send_control = Transport.send_control transport;
      drain = (fun () -> Transport.drain transport);
    };
  List.iter
    (fun (tname, versioned) ->
      Dc.create_table dc ~name:tname ~versioned;
      Tc.map_table tc ~table:tname ~dc:dc_name ~versioned)
    tables;
  let mgr = Repl.Manager.create ~counters tc in
  Repl.Manager.enable_layers mgr;
  let t =
    {
      name;
      fork_lsn;
      parent;
      counters;
      tc;
      dc;
      dc_name;
      transport;
      mgr;
      tbls = tables;
      materialized = Hashtbl.create 64;
      full_tables = Hashtbl.create 4;
      closed = false;
    }
  in
  Instrument.bump counters "branch.creates";
  Metrics.stop counters "branch.fork_ns" t0;
  Trace.record ~tid:0 ~comp:"branch" ~ev:"create"
    [ ("name", name); ("parent", parent.p_label);
      ("fork", Lsn.to_string fork_lsn) ];
  t

let name t = t.name

let fork_lsn t = t.fork_lsn

let tc t = t.tc

let dc t = t.dc

let dc_name t = t.dc_name

let tables t = t.tbls

let parent_label t = t.parent.p_label

let closed t = t.closed

let check_open t =
  if t.closed then invalid_arg ("Branch: " ^ t.name ^ " is deleted")

let store t =
  match Repl.Manager.layer_store t.mgr with
  | Some s -> s
  | None -> assert false (* enable_layers ran in create *)

let sync t = Repl.Manager.sync_layers t.mgr

(* Combined LSN space: [0, fork] is the parent's prefix, fork + i is the
   branch's own i-th LSN. *)
let local_of t at = Lsn.of_int (Lsn.to_int at - Lsn.to_int t.fork_lsn)

let combined t local = Lsn.of_int (Lsn.to_int t.fork_lsn + Lsn.to_int local)

let durable t =
  check_open t;
  sync t;
  combined t (Layer.ingested_lsn (store t))

let materialized_count t = Hashtbl.length t.materialized

(* ------------------------------------------------------------------ *)
(* Lazy copy-on-write materialization                                  *)

(* Install one key's fork-point base state through the branch's own TC
   dispatch path, as its own committed system transaction: the install
   is ordinary logged traffic, so a branch DC crash recovers it by
   ordinary redo and the memo here never points at state the log cannot
   account for. *)
let install t ~table ~key ~value =
  let txn = Tc.begin_txn t.tc in
  match Tc.insert t.tc txn ~table ~key ~value with
  | `Ok () -> (
    match Tc.commit t.tc txn with
    | `Ok () ->
      Hashtbl.replace t.materialized (table, key) ();
      Instrument.bump t.counters "branch.materializations";
      `Ok ()
    | (`Blocked | `Fail _) as r -> r)
  | `Blocked as r ->
    Tc.abort t.tc txn ~reason:"branch-materialize";
    r
  | `Fail _ as r ->
    Tc.abort t.tc txn ~reason:"branch-materialize";
    (* a crash between an earlier install's commit and its memo leaves
       the key present but unrecorded — the present key IS the
       materialized state, so don't wedge every retry on
       insert-on-present *)
    if Tc.read_committed t.tc ~table ~key <> None then begin
      Hashtbl.replace t.materialized (table, key) ();
      `Ok ()
    end
    else r

let ensure_key t ~table ~key =
  if Hashtbl.mem t.full_tables table || Hashtbl.mem t.materialized (table, key)
  then `Ok ()
  else
    match t.parent.p_lookup ~table ~key ~at:t.fork_lsn with
    | `Gone | `Unwritten ->
      (* nothing to copy: the branch's own tier answers from here on *)
      Hashtbl.replace t.materialized (table, key) ();
      `Ok ()
    | `Visible value -> install t ~table ~key ~value

(* A scan must see every parent row, so the whole table faults in.  Each
   row is its own system transaction: a blocked install leaves the table
   partial (and unmarked), and the scan refuses rather than lie. *)
let ensure_table t ~table =
  if Hashtbl.mem t.full_tables table then true
  else begin
    let todo = ref [] in
    t.parent.p_iter_at ~at:t.fork_lsn (fun ~table:tb ~key value ->
        if
          String.equal tb table
          && not (Hashtbl.mem t.materialized (table, key))
        then todo := (key, value) :: !todo);
    let ok =
      List.for_all
        (fun (key, value) ->
          match install t ~table ~key ~value with
          | `Ok () -> true
          | `Blocked | `Fail _ -> false)
        (List.rev !todo)
    in
    if ok then Hashtbl.replace t.full_tables table ();
    ok
  end

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let begin_txn t =
  check_open t;
  Tc.begin_txn t.tc

let write_op t ~table ~key k =
  check_open t;
  match ensure_key t ~table ~key with
  | `Ok () ->
    Instrument.bump t.counters "branch.writes";
    k ()
  | (`Blocked | `Fail _) as r -> r

let insert t txn ~table ~key ~value =
  write_op t ~table ~key (fun () -> Tc.insert t.tc txn ~table ~key ~value)

let update t txn ~table ~key ~value =
  write_op t ~table ~key (fun () -> Tc.update t.tc txn ~table ~key ~value)

let delete t txn ~table ~key =
  write_op t ~table ~key (fun () -> Tc.delete t.tc txn ~table ~key)

let read t txn ~table ~key =
  check_open t;
  match ensure_key t ~table ~key with
  | `Ok () ->
    Instrument.bump t.counters "branch.reads";
    Tc.read t.tc txn ~table ~key
  | (`Blocked | `Fail _) as r -> (r :> string option Tc.outcome)

let scan t txn ~table ~from_key ~limit =
  check_open t;
  if not (ensure_table t ~table) then `Blocked
  else begin
    Instrument.bump t.counters "branch.reads";
    Tc.scan t.tc txn ~table ~from_key ~limit
  end

let commit t txn =
  check_open t;
  Tc.commit t.tc txn

let abort t txn ~reason =
  check_open t;
  Tc.abort t.tc txn ~reason

(* ------------------------------------------------------------------ *)
(* Point-in-time reads (combined LSN space)                            *)

let lookup_at t ~table ~key ~at =
  check_open t;
  if Lsn.(at <= t.fork_lsn) then t.parent.p_lookup ~table ~key ~at
  else begin
    sync t;
    let st = store t in
    let local = local_of t at in
    if Lsn.(Layer.ingested_lsn st < local) then
      raise
        (Out_of_range
           { wanted = at; durable = combined t (Layer.ingested_lsn st) });
    match Layer.lookup st ~table ~key ~at:local with
    | (`Visible _ | `Gone) as v ->
      (* the branch logged this key at or below [local]: its own tier
         owns the answer, including a branch-side delete *)
      v
    | `Unwritten ->
      (* untouched by the branch there — the shared prefix answers.
         Note a key materialized later than [local] still reads the
         parent here, which is exactly the value the install copied. *)
      t.parent.p_lookup ~table ~key ~at:t.fork_lsn
  end

let read_as_of t ~table ~key ~at =
  Instrument.bump t.counters "branch.reads";
  match lookup_at t ~table ~key ~at with
  | `Visible v -> Some v
  | `Gone | `Unwritten -> None

let iter_merged t ~at f =
  check_open t;
  if Lsn.(at <= t.fork_lsn) then t.parent.p_iter_at ~at f
  else begin
    sync t;
    let st = store t in
    let local = local_of t at in
    if Lsn.(Layer.ingested_lsn st < local) then
      raise
        (Out_of_range
           { wanted = at; durable = combined t (Layer.ingested_lsn st) });
    let rows : (string * string, string) Hashtbl.t = Hashtbl.create 64 in
    t.parent.p_iter_at ~at:t.fork_lsn (fun ~table ~key value ->
        Hashtbl.replace rows (table, key) value);
    (* every key the branch ever touched is in the memo; each one's
       3-way state at [local] decides override / delete / fall-through *)
    Hashtbl.iter
      (fun ((table, key) as tk) () ->
        match Layer.lookup st ~table ~key ~at:local with
        | `Visible v -> Hashtbl.replace rows tk v
        | `Gone -> Hashtbl.remove rows tk
        | `Unwritten -> ())
      t.materialized;
    Hashtbl.iter (fun (table, key) value -> f ~table ~key value) rows
  end

let rows_at t ~table ~at =
  let acc = ref [] in
  iter_merged t ~at (fun ~table:tb ~key value ->
      if String.equal tb table then acc := (key, value) :: !acc);
  List.sort compare !acc

let fork_rows t ~table =
  check_open t;
  let acc = ref [] in
  t.parent.p_iter_at ~at:t.fork_lsn (fun ~table:tb ~key value ->
      if String.equal tb table then acc := (key, value) :: !acc);
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* Fault tolerance                                                     *)

let crash_dc t =
  check_open t;
  Transport.drop_in_flight t.transport;
  Dc.crash t.dc;
  Dc.recover t.dc;
  Tc.on_dc_restart t.tc ~dc:t.dc_name;
  Instrument.bump t.counters "branch.dc_crashes";
  Trace.record ~tid:0 ~comp:"branch" ~ev:"dc_crash" [ ("name", t.name) ]

let quiesce t =
  check_open t;
  Tc.quiesce t.tc;
  Tc.force_log t.tc;
  Repl.Manager.settle t.mgr;
  sync t

(* ------------------------------------------------------------------ *)
(* Nesting and teardown                                                *)

let as_parent t =
  {
    p_label = t.name;
    p_high = (fun () -> durable t);
    p_lookup = (fun ~table ~key ~at -> lookup_at t ~table ~key ~at);
    p_iter_at = (fun ~at f -> iter_merged t ~at f);
    p_pin =
      (fun ~at ->
        check_open t;
        if Lsn.(at <= t.fork_lsn) then t.parent.p_pin ~at
        else begin
          sync t;
          Layer.pin (store t) ~at:(local_of t at)
        end);
    p_unpin =
      (fun ~at ->
        check_open t;
        if Lsn.(at <= t.fork_lsn) then t.parent.p_unpin ~at
        else Layer.unpin (store t) ~at:(local_of t at));
  }

let close t =
  check_open t;
  t.closed <- true;
  t.parent.p_unpin ~at:t.fork_lsn;
  Instrument.bump t.counters "branch.deletes";
  Trace.record ~tid:0 ~comp:"branch" ~ev:"delete" [ ("name", t.name) ]
