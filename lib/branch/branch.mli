(** Copy-on-write database branches over the layered log tier.

    A branch forks a deployment's state at any absorbed LSN of its
    parent's layer store (the paper's §7 "log as a service" outlook
    taken one step further: once every [(key, LSN)] state is
    reconstructable, a second TC+DC pipeline can {e share} the history
    below a fork point instead of copying it).  The fork itself is
    O(metadata): no record moves — the branch takes a retention {!pin}
    on the parent at the fork LSN and starts an empty TC, DC, transport
    and layer store of its own.

    Reads and writes split at the fork point:

    - {e below or at} the fork LSN, reads resolve through the parent's
      shared layers ([`Unwritten] in the branch's own tier falls
      through; [`Gone] — a branch-side delete — must not);
    - {e above} it, through the branch's own WAL/L0/L1 tier, addressed
      in a {e combined} LSN space: combined [c > fork] maps to the
      branch-local LSN [c - fork].

    Base state is installed {e lazily}, copy-on-write: the first touch
    of a key runs a separately-committed system transaction through the
    branch's own TC dispatch path inserting the parent's value at the
    fork point.  Because that install is ordinary logged traffic, a
    branch DC crash recovers it by ordinary redo — {!crash_dc} never
    touches the parent.

    Parents are abstract ({!parent}): a branch can fork from a root
    layer store ({!of_manager}) or from another branch
    ({!as_parent}), nesting arbitrarily. *)

exception Out_of_range of { wanted : Untx_util.Lsn.t; durable : Untx_util.Lsn.t }
(** A fork or point-in-time read beyond what the addressed tier has
    absorbed: [wanted] exceeds [durable], the highest answerable
    combined LSN.  Mirrors [Wal.Truncated {wanted; retained}]. *)

(** What a branch needs from whatever it forked: a 3-way point-in-time
    lookup, a fork-point scan, retention pins, and the high watermark.
    All LSNs are in the parent's own (combined, if it is itself a
    branch) LSN space. *)
type parent = {
  p_label : string;  (** diagnostics: who the parent is *)
  p_high : unit -> Untx_util.Lsn.t;
      (** highest LSN the parent currently answers (its ingest
          watermark, freshened) — the ceiling for fork points *)
  p_lookup :
    table:string ->
    key:string ->
    at:Untx_util.Lsn.t ->
    [ `Visible of string | `Gone | `Unwritten ];
  p_iter_at :
    at:Untx_util.Lsn.t -> (table:string -> key:string -> string -> unit) -> unit;
  p_pin : at:Untx_util.Lsn.t -> unit;
  p_unpin : at:Untx_util.Lsn.t -> unit;
}

val of_manager : ?label:string -> Untx_repl.Repl.Manager.t -> parent
(** The root parent: a TC's layered shipping manager.  Lookups, scans
    and the high watermark sync the store to end-of-stable-log first.
    Raises [Invalid_argument] if the manager has no layer store. *)

type t

val create :
  ?counters:Untx_util.Instrument.t ->
  ?policy:Untx_kernel.Transport.policy ->
  ?seed:int ->
  ?wrap:((string -> string option) -> string -> string option) ->
  name:string ->
  fork_lsn:Untx_util.Lsn.t ->
  parent:parent ->
  tc_id:Untx_util.Tc_id.t ->
  dc_config:Untx_dc.Dc.config ->
  part:int ->
  tables:(string * bool) list ->
  unit ->
  t
(** Fork [parent] at [fork_lsn]: pin the parent there, then stand up
    the branch's own TC ([tc_id] must be fresh in the deployment — the
    M-TC identity plumbing rejects misattributed frames), DC ([part]
    likewise), two-channel transport under [policy]/[seed], and a
    layered shipping manager (so the branch supports [read_as_of],
    layer-sourced redo and history truncation of its own).  [tables]
    are created on both sides and routed.  [wrap] (default identity)
    wraps the DC's frame handlers — deployments use it to attribute
    injected faults to the branch.  No data is copied: fork cost is
    O(metadata), timed as ["branch.fork_ns"] and counted as
    ["branch.creates"].  Raises {!Out_of_range} when [fork_lsn]
    exceeds the parent's high watermark. *)

val name : t -> string

val fork_lsn : t -> Untx_util.Lsn.t

val tc : t -> Untx_tc.Tc.t

val dc : t -> Untx_dc.Dc.t

val dc_name : t -> string

val tables : t -> (string * bool) list
(** The branch's table set, as [(name, versioned)] pairs. *)

val parent_label : t -> string

val durable : t -> Untx_util.Lsn.t
(** The highest combined LSN the branch answers: fork LSN plus its own
    store's ingest watermark (freshened to end-of-stable-log). *)

val store : t -> Untx_layer.Layer.t
(** The branch's own layer store (post-fork history). *)

val materialized_count : t -> int
(** Keys whose fork-point base state has been faulted in so far. *)

(** {2 Transactions}

    The full TC surface, copy-on-write: each accessor first ensures the
    touched key's fork-point base state is materialized (a separately
    committed system transaction — [`Blocked]/[`Fail] from that install
    surfaces to the caller, with nothing marked), then runs the user
    operation through the branch TC's ordinary dispatch path.  Reads
    are counted as ["branch.reads"], writes as ["branch.writes"],
    installs as ["branch.materializations"]. *)

val begin_txn : t -> Untx_tc.Tc.txn

val insert :
  t -> Untx_tc.Tc.txn -> table:string -> key:string -> value:string ->
  unit Untx_tc.Tc.outcome

val update :
  t -> Untx_tc.Tc.txn -> table:string -> key:string -> value:string ->
  unit Untx_tc.Tc.outcome

val delete :
  t -> Untx_tc.Tc.txn -> table:string -> key:string -> unit Untx_tc.Tc.outcome

val read :
  t -> Untx_tc.Tc.txn -> table:string -> key:string ->
  string option Untx_tc.Tc.outcome

val scan :
  t -> Untx_tc.Tc.txn -> table:string -> from_key:string -> limit:int ->
  (string * string) list Untx_tc.Tc.outcome
(** A scan must see every parent key, so it materializes the whole
    table first (the parent's fork-point rows, one system transaction
    each); if any install could not run the scan answers [`Blocked]
    rather than a partial view. *)

val commit : t -> Untx_tc.Tc.txn -> unit Untx_tc.Tc.outcome

val abort : t -> Untx_tc.Tc.txn -> reason:string -> unit

(** {2 Point-in-time reads} *)

val lookup_at :
  t ->
  table:string ->
  key:string ->
  at:Untx_util.Lsn.t ->
  [ `Visible of string | `Gone | `Unwritten ]
(** The 3-way state at combined LSN [at]: at or below the fork, the
    parent's shared layers answer; above it, the branch's own tier,
    with [`Unwritten] falling through to the parent at the fork point.
    Raises {!Out_of_range} past {!durable}. *)

val read_as_of :
  t -> table:string -> key:string -> at:Untx_util.Lsn.t -> string option
(** {!lookup_at} flattened to the user-visible value ([`Gone] and
    [`Unwritten] both read as [None]).  Counted as ["branch.reads"]. *)

val rows_at : t -> table:string -> at:Untx_util.Lsn.t -> (string * string) list
(** Every visible row of [table] at combined LSN [at], sorted by key —
    the parent's fork-point rows overridden by the branch's own state.
    Audit and parity checks read the branch through this. *)

val fork_rows : t -> table:string -> (string * string) list
(** The parent's visible rows at the fork point, sorted by key — the
    shared prefix the branch must agree with below the fork. *)

(** {2 Fault tolerance} *)

val crash_dc : t -> unit
(** Crash + recover the branch's DC, then redo from the branch TC —
    exactly the deployment's single-DC restart, scoped to the branch.
    The parent is untouched; materialized base state is logged traffic,
    so redo restores it. *)

val quiesce : t -> unit
(** Settle the branch: pump the transport dry, force the log, sync the
    branch store to end-of-stable-log. *)

(** {2 Nesting and teardown} *)

val as_parent : t -> parent
(** The branch viewed as a parent, so branches fork from branches.  All
    LSNs in the returned record are combined (parent-space below the
    fork, fork + local above). *)

val close : t -> unit
(** Delete the branch: release the parent's fork-point pin.  Every
    subsequent operation raises [Invalid_argument].  Counted as
    ["branch.deletes"].  The caller (deployment) is responsible for
    refusing to close a branch that still has live children. *)

val closed : t -> bool
