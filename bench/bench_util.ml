(* Shared helpers for the experiment harness: wall-clock timing, table
   rendering, engine construction. *)

module Kernel = Untx_kernel.Kernel
module Transport = Untx_kernel.Transport
module Engine = Untx_kernel.Engine
module Driver = Untx_kernel.Driver
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Mono = Untx_baseline.Mono
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics
module Trace = Untx_obs.Trace

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* --- table printing --------------------------------------------------- *)

let print_table ~title ~header rows =
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell -> max (List.nth acc i) (String.length cell))
          row)
      (List.map (fun _ -> 0) header)
      all
  in
  let line c =
    print_string "+";
    List.iter (fun w -> print_string (String.make (w + 2) c ^ "+")) widths;
    print_newline ()
  in
  let render row =
    print_string "|";
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Printf.printf " %-*s |" w cell)
      row;
    print_newline ()
  in
  Printf.printf "\n%s\n" title;
  line '-';
  render header;
  line '=';
  List.iter render rows;
  line '-'

let fmt_f f = Printf.sprintf "%.1f" f

let fmt_f2 f = Printf.sprintf "%.2f" f

let per x n = if n = 0 then 0. else float_of_int x /. float_of_int n

(* --- histogram rendering ----------------------------------------------- *)

(* One row per named histogram that actually saw samples.  Latency
   histograms (the [_ns] naming convention, possibly with a
   per-partition suffix as in [dc.apply_ns.p3]) render with human
   units; size histograms render raw. *)
let is_ns_hist name =
  let n = String.length name in
  let rec go i = i + 3 <= n && (String.sub name i 3 = "_ns" || go (i + 1)) in
  go 0

let print_hists ~title c names =
  let rows =
    List.filter_map
      (fun name ->
        match Metrics.hist_snapshot c name with
        | None -> None
        | Some s ->
          let fmt v =
            if is_ns_hist name then Metrics.fmt_ns v else string_of_int v
          in
          Some
            [
              name;
              string_of_int s.Metrics.s_count;
              fmt (Metrics.percentile s 50.);
              fmt (Metrics.percentile s 95.);
              fmt (Metrics.percentile s 99.);
              fmt s.Metrics.s_max;
            ])
      names
  in
  if rows <> [] then
    print_table ~title ~header:[ "histogram"; "n"; "p50"; "p95"; "p99"; "max" ]
      rows

(* --- engines ----------------------------------------------------------- *)

let kernel_config ?(policy = Transport.reliable) ?(sync_policy = Dc.Full_ablsn)
    ?(tc_reset_mode = Dc.Selective) ?(cc_protocol = Tc.Key_locks)
    ?(pipeline_writes = true) ?(page_capacity = 512) ?(cache_pages = 512)
    ?(seed = 42) ?(lwm_every = 16) ?(counters = Instrument.global) () =
  ignore counters;
  {
    Kernel.tc =
      {
        (Tc.default_config (Tc_id.of_int 1)) with
        cc_protocol;
        pipeline_writes;
        lwm_every;
      };
    dc =
      {
        Dc.page_capacity;
        cache_pages;
        sync_policy;
        tc_reset_mode;
        debug_checks = false;
      };
    policy;
    seed;
    auto_checkpoint_every = 0;
  }

let make_kernel ?policy ?sync_policy ?tc_reset_mode ?cc_protocol
    ?pipeline_writes ?page_capacity ?cache_pages ?seed ?lwm_every ?counters
    ?(versioned = true) ?(table = "kv") () =
  let k =
    Kernel.create ?counters
      (kernel_config ?policy ?sync_policy ?tc_reset_mode ?cc_protocol
         ?pipeline_writes ?page_capacity ?cache_pages ?seed ?lwm_every
         ?counters ())
  in
  Kernel.create_table k ~name:table ~versioned;
  k

let make_mono ?(cc_protocol = Tc.Key_locks) ?(page_capacity = 512)
    ?(cache_pages = 512) ?counters ?(table = "kv") () =
  let m =
    Mono.create ?counters
      { Mono.page_capacity; cache_pages; cc_protocol; debug_checks = false }
  in
  Mono.create_table m ~name:table;
  m

let mono_engine m : (module Engine.S) =
  (module struct
    type txn = Mono.txn

    let begin_txn () = Mono.begin_txn m

    let xid = Mono.xid

    let is_active = Mono.is_active

    let read txn ~table ~key = Mono.read m txn ~table ~key

    let insert txn ~table ~key ~value = Mono.insert m txn ~table ~key ~value

    let update txn ~table ~key ~value = Mono.update m txn ~table ~key ~value

    let delete txn ~table ~key = Mono.delete m txn ~table ~key

    let scan txn ~table ~from_key ~limit =
      Mono.scan m txn ~table ~from_key ~limit

    let commit txn = Mono.commit m txn

    let abort txn ~reason = Mono.abort m txn ~reason

    let wakeups () = Mono.wakeups m

    let resolve_deadlock () = Mono.resolve_deadlock m
  end)
