(* Bechamel micro-benchmarks: the hot paths under each experiment.

   One Test.make per operation class; all grouped in one run.  These
   complement the experiment tables with per-operation costs measured
   by OLS over monotonic-clock samples. *)

open Bechamel
open Toolkit
module Kernel = Untx_kernel.Kernel
module Ablsn = Untx_dc.Ablsn
module Lsn = Untx_util.Lsn
module Btree = Untx_btree.Btree
module Page = Untx_storage.Page
module Page_id = Untx_storage.Page_id
module Disk = Untx_storage.Disk
module Cache = Untx_storage.Cache
module Mono = Untx_baseline.Mono
module Layer = Untx_layer.Layer
module Op = Untx_msg.Op
module Tc_id = Untx_util.Tc_id

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "blocked"
  | `Fail m -> failwith m

let kernel_txn_test =
  let k = Bench_util.make_kernel () in
  let txn0 = Kernel.begin_txn k in
  for j = 0 to 1_999 do
    ok (Kernel.insert k txn0 ~table:"kv" ~key:(Printf.sprintf "k%06d" j) ~value:"v")
  done;
  ok (Kernel.commit k txn0);
  let i = ref 0 in
  Test.make ~name:"unbundled: 1-write txn (commit+force)"
    (Staged.stage (fun () ->
         incr i;
         let key = Printf.sprintf "k%06d" (!i mod 2_000) in
         let txn = Kernel.begin_txn k in
         ok (Kernel.update k txn ~table:"kv" ~key ~value:"v");
         ok (Kernel.commit k txn)))

let kernel_read_test =
  let k = Bench_util.make_kernel () in
  let txn0 = Kernel.begin_txn k in
  for j = 0 to 999 do
    ok (Kernel.insert k txn0 ~table:"kv" ~key:(Printf.sprintf "k%04d" j) ~value:"v")
  done;
  ok (Kernel.commit k txn0);
  let i = ref 0 in
  Test.make ~name:"unbundled: point read (lock+message)"
    (Staged.stage (fun () ->
         incr i;
         let txn = Kernel.begin_txn k in
         ignore
           (ok
              (Kernel.read k txn ~table:"kv"
                 ~key:(Printf.sprintf "k%04d" (!i mod 1000))));
         ok (Kernel.commit k txn)))

let mono_txn_test =
  let m = Bench_util.make_mono () in
  let txn0 = Mono.begin_txn m in
  for j = 0 to 1_999 do
    ok (Mono.insert m txn0 ~table:"kv" ~key:(Printf.sprintf "k%06d" j) ~value:"v")
  done;
  ok (Mono.commit m txn0);
  let i = ref 0 in
  Test.make ~name:"monolith: 1-write txn (commit+force)"
    (Staged.stage (fun () ->
         incr i;
         let key = Printf.sprintf "k%06d" (!i mod 2_000) in
         let txn = Mono.begin_txn m in
         ok (Mono.update m txn ~table:"kv" ~key ~value:"v");
         ok (Mono.commit m txn)))

let ablsn_test =
  let i = ref 0 in
  let ab = ref Ablsn.empty in
  Test.make ~name:"abLSN: add + included test"
    (Staged.stage (fun () ->
         incr i;
         ab := Ablsn.add (Lsn.of_int !i) !ab;
         if !i mod 64 = 0 then ab := Ablsn.advance ~lwm:(Lsn.of_int !i) !ab;
         ignore (Ablsn.included (Lsn.of_int (!i / 2)) !ab)))

let btree_test =
  let disk = Disk.create () in
  let cache = Cache.create ~disk ~capacity:4096 () in
  let tree =
    Btree.create ~cache ~name:"b" ~page_capacity:512 ~hooks:Btree.null_hooks
  in
  let i = ref 0 in
  Test.make ~name:"B-tree: set (with splits)"
    (Staged.stage (fun () ->
         incr i;
         Btree.set tree
           ~key:(Printf.sprintf "k%08d" (!i * 2654435761 land 0xFFFFF))
           ~data:"0123456789abcdef"))

let page_test =
  let page = Page.create ~id:(Page_id.of_int 1) ~kind:Page.Leaf ~capacity:100_000 in
  let i = ref 0 in
  Test.make ~name:"page: set/find"
    (Staged.stage (fun () ->
         incr i;
         let key = Printf.sprintf "k%03d" (!i mod 500) in
         Page.set page ~key ~data:"payload";
         ignore (Page.find page key)))

(* A compacted layer store shared by the Bechamel test and the ns/op
   gate below: 20k ops over 200 keys, split into a handful of L1
   layers so lookups pay a realistic newest-first probe. *)
let layer_store =
  lazy
    (let s =
       Layer.create ~compact_runs:max_int ~writer:(Tc_id.of_int 1)
         ~versioned:(fun _ -> false)
         ()
     in
     let n = 20_000 in
     let op i =
       let key = Printf.sprintf "k%03d" (i mod 200) in
       if i < 200 then Op.Insert { table = "kv"; key; value = "v" }
       else Op.Update { table = "kv"; key; value = Printf.sprintf "v%d" i }
     in
     List.iter
       (fun chunk ->
         Layer.absorb s
           ~upto:(Lsn.of_int (chunk * (n / 4)))
           (fun emit ->
             for i = 1 to n do
               emit (Lsn.of_int i) (op (i - 1))
             done);
         Layer.compact ~all:true s)
       [ 1; 2; 3; 4 ];
     s)

let layer_reconstruct_test =
  let s = Lazy.force layer_store in
  let i = ref 0 in
  Test.make ~name:"layer: reconstruct (point@LSN)"
    (Staged.stage (fun () ->
         incr i;
         let key = Printf.sprintf "k%03d" (!i * 7 mod 200) in
         let at = Lsn.of_int (1 + (!i * 2654435761 land 0x3FFF)) in
         ignore (Layer.reconstruct s ~table:"kv" ~key ~at)))

(* ns/op gate: reconstruct is the read path every branch fork-point
   lookup and point-in-time read rides, so hold it to a generous
   ceiling — a regression to scanning history linearly fails loudly
   here long before the experiment tables notice. *)
let reconstruct_gate_ns = 50_000.

let gate_reconstruct () =
  let s = Lazy.force layer_store in
  let n = 50_000 in
  let (), sec =
    Bench_util.time (fun () ->
        for i = 1 to n do
          let key = Printf.sprintf "k%03d" (i * 7 mod 200) in
          let at = Lsn.of_int (1 + (i * 2654435761 land 0x3FFF)) in
          ignore (Layer.reconstruct s ~table:"kv" ~key ~at)
        done)
  in
  let ns = sec *. 1e9 /. float_of_int n in
  Printf.printf "%-45s %12.0f  (gate <= %.0f)\n" "layer: reconstruct, direct"
    ns reconstruct_gate_ns;
  if ns > reconstruct_gate_ns then begin
    Printf.printf "MICRO FAILED: Layer.reconstruct %.0f ns/op over the gate\n"
      ns;
    exit 1
  end

let benchmark () =
  let tests =
    Test.make_grouped ~name:"untx"
      [
        kernel_txn_test; kernel_read_test; mono_txn_test; ablsn_test;
        btree_test; page_test; layer_reconstruct_test;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\nMicro-benchmarks (ns/op, OLS on monotonic clock)\n";
  Printf.printf "%-45s %12s\n" "operation" "ns/op";
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-45s %12.0f\n" name est
      | _ -> Printf.printf "%-45s %12s\n" name "-")
    results

let run () =
  benchmark ();
  gate_reconstruct ()
