(* E4 — Page-sync policies (paper Section 5.1.2).

   Three ways to make the abstract LSN stable atomically with a flush:
   1. stall until the low-water mark covers every included LSN (a single
      LSN on the page, but flushes wait);
   2. serialize the whole abstract LSN (never wait, fat metadata);
   3. bounded hybrid (wait until the set is small, then serialize).

   A small buffer pool forces continuous eviction, so flush eligibility
   is on the hot path; we report stalls, completed flushes, metadata
   bytes written and throughput. *)

open Bench_util
module Kernel = Untx_kernel.Kernel
module Dc = Untx_dc.Dc
module Cache = Untx_storage.Cache
module Driver = Untx_kernel.Driver
module Engine = Untx_kernel.Engine
module Instrument = Untx_util.Instrument

let spec =
  {
    Driver.default_spec with
    txns = 1_200;
    ops_per_txn = 8;
    read_ratio = 0.2;
    key_space = 6_000;
    concurrency = 1;
    seed = 31;
  }

let pool_pages = 48

let run_policy label sync_policy =
  let counters = Instrument.create () in
  (* an infrequent low-water mark leaves {LSNin} sets fat, stressing the
     policies' flush-eligibility rules *)
  let k =
    make_kernel ~counters ~sync_policy ~cache_pages:pool_pages
      ~page_capacity:512 ~lwm_every:300 ()
  in
  let e = Engine.of_kernel k in
  Driver.preload e spec;
  let r, t = time (fun () -> Driver.run e spec) in
  let flushes = Instrument.get counters "cache.flushes" in
  let evictions = Instrument.get counters "cache.evictions" in
  let skips = Instrument.get counters "cache.evict_skips" in
  let scan_steps = Instrument.get counters "cache.evict_scan_steps" in
  (* Regression gate for the victim search: the second-chance clock pays
     an amortized handful of ring steps per eviction attempt.  The old
     LRU-ticket scan folded over the whole pool per candidate — ~pool
     steps per eviction — so a quarter of the pool size is a loud
     tripwire without being flaky. *)
  let per_attempt =
    float_of_int scan_steps /. float_of_int (max 1 (evictions + skips))
  in
  if per_attempt > float_of_int pool_pages /. 4. then begin
    Printf.printf
      "E4 FAILED: eviction scan cost regressed (%.1f steps per attempt, \
       pool %d)\n"
      per_attempt pool_pages;
    exit 1
  end;
  [
    label;
    fmt_f (float_of_int r.Driver.committed /. t);
    string_of_int flushes;
    string_of_int skips;
    fmt_f2 per_attempt;
    string_of_int (Instrument.get counters "dc.meta_bytes_flushed");
    fmt_f (per (Instrument.get counters "dc.meta_bytes_flushed") flushes);
  ]

let run () =
  print_table
    ~title:
      "E4  Page-sync policies under eviction pressure (48-page pool, \
       update-heavy)"
    ~header:
      [ "policy"; "txns/s"; "flushes"; "policy skips"; "scan/attempt";
        "meta bytes"; "meta B/flush" ]
    [
      run_policy "1: stall until LWM" Dc.Stall_until_lwm;
      run_policy "2: full abLSN" Dc.Full_ablsn;
      run_policy "3: bounded (k=4)" (Dc.Bounded 4);
    ];
  Printf.printf
    "claim check: option 1 trades flush stalls for one-LSN pages; option \
     2 never stalls but\nwrites the whole set; option 3 sits between — \
     the trade-off of Section 5.1.2.\n"
