(* E2 — Instance scaling (the multi-core argument, Intro trend 3).

   The paper speculates that separately instantiable TCs and DCs use
   cores better: "one might deploy a larger number of DC instances on a
   multi-core platform than TC instances for better load balancing".

   Measured here on the real partitioned deployment: one TC fronting N
   hash-partitioned Data Components ({!Untx_cloud.Deploy}), the same
   Zipf workload at every N.  The numbers show what partitioning itself
   costs and buys — per-partition load balance, messages per
   transaction, and throughput — rather than simulating instances with
   independent kernels.

   The second half is the resilience dividend: with 4 partitions, one DC
   is hard-killed mid-workload and recovers alone (its siblings'
   caches are untouched); the deployment auditor must find every
   committed record afterwards. *)

open Bench_util
module Driver = Untx_kernel.Driver
module Engine = Untx_kernel.Engine
module Transport = Untx_kernel.Transport
module Deploy = Untx_cloud.Deploy
module Audit = Untx_audit.Audit
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument

let table = "kv"

let total_txns = 3_000

let make_deploy ~counters ~parts =
  let d = Deploy.create ~counters ~policy:Transport.reliable ~seed:11 () in
  ignore
    (Deploy.add_tc d ~name:"tc1"
       { (Tc.default_config (Tc_id.of_int 1)) with lwm_every = 16 });
  let dc_names = List.init parts (Printf.sprintf "dc%d") in
  List.iter
    (fun name ->
      ignore
        (Deploy.add_dc d ~name
           { Dc.default_config with page_capacity = 256; cache_pages = 64 }))
    dc_names;
  Deploy.add_partitioned_table d ~name:table ~versioned:false ~dcs:dc_names ();
  d

let spec =
  {
    Driver.default_spec with
    table;
    txns = total_txns;
    ops_per_txn = 6;
    read_ratio = 0.5;
    key_space = 4_000;
    zipf_theta = 0.8;
    concurrency = 2;
    seed = 23;
  }

(* --- the sweep ------------------------------------------------------ *)

let run_parts parts =
  let counters = Instrument.create () in
  let d = make_deploy ~counters ~parts in
  let e = Engine.of_tc (Deploy.tc d "tc1") in
  Driver.preload e spec;
  let msgs0 = Deploy.messages_total d in
  let res, elapsed = time (fun () -> Driver.run e spec) in
  Deploy.quiesce d;
  let msgs = Deploy.messages_total d - msgs0 in
  let rows_per_dc =
    List.map
      (fun name -> List.length (Dc.dump_table (Deploy.dc d name) table))
      (Deploy.partitions d ~table)
  in
  let misrouted = Instrument.get counters "dc.misrouted" in
  (res, elapsed, msgs, rows_per_dc, misrouted)

(* --- resilience: one partition dies, siblings keep their caches ----- *)

let resilience_txns = 600

let run_resilience ~parts =
  let counters = Instrument.create () in
  let d = make_deploy ~counters ~parts in
  let tc = Deploy.tc d "tc1" in
  let oracle : (string, string) Hashtbl.t = Hashtbl.create 1024 in
  let committed = ref 0 in
  let sibling_commits_after_crash = ref 0 in
  let crash_at = resilience_txns / 2 in
  for i = 0 to resilience_txns - 1 do
    if i = crash_at then Deploy.crash_dc d "dc1";
    let txn = Tc.begin_txn tc in
    let staged = ref [] in
    for j = 0 to 2 do
      let key = Printf.sprintf "r%04d" (((i * 3) + j) mod 1_500) in
      let value = Printf.sprintf "v%d.%d" i j in
      let ok =
        match Tc.update tc txn ~table ~key ~value with
        | `Ok () -> true
        | `Fail _ -> (
          match Tc.insert tc txn ~table ~key ~value with
          | `Ok () -> true
          | `Blocked | `Fail _ -> false)
        | `Blocked -> false
      in
      if ok then staged := (key, value) :: !staged
    done;
    match Tc.commit tc txn with
    | `Ok () ->
      incr committed;
      if i >= crash_at then incr sibling_commits_after_crash;
      List.iter (fun (k, v) -> Hashtbl.replace oracle k v) !staged
    | `Blocked | `Fail _ -> if Tc.is_active txn then Tc.abort tc txn ~reason:"e2"
  done;
  Deploy.quiesce d;
  let expected =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let report = Audit.run_deploy d ~tc:"tc1" ~table ~expected in
  (!committed, !sibling_commits_after_crash, report.Audit.violations)

let run () =
  let base = ref None in
  let rows =
    List.map
      (fun parts ->
        let res, elapsed, msgs, rows_per_dc, misrouted = run_parts parts in
        let tput = float_of_int res.Driver.committed /. elapsed in
        let rel =
          match !base with
          | None ->
            base := Some tput;
            1.0
          | Some b -> tput /. b
        in
        let spread =
          let mn = List.fold_left min max_int rows_per_dc in
          let mx = List.fold_left max 0 rows_per_dc in
          if mn = 0 then "n/a"
          else Printf.sprintf "%.2f" (float_of_int mx /. float_of_int mn)
        in
        if misrouted > 0 then begin
          Printf.printf "E2 FAILED: %d misrouted frames at N=%d\n" misrouted
            parts;
          exit 1
        end;
        [
          string_of_int parts;
          string_of_int res.Driver.committed;
          fmt_f tput;
          fmt_f2 rel;
          fmt_f2 (float_of_int msgs /. float_of_int res.Driver.committed);
          spread;
        ])
      [ 1; 2; 4; 8 ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E2  Partitioned deployment: %d-txn Zipf workload, one TC over N \
          hash-partitioned DCs"
         total_txns)
    ~header:
      [ "DCs"; "committed"; "txns/s"; "vs N=1"; "msgs/txn"; "row spread" ]
    rows;
  (* Per-partition apply latency, observability on: the same Zipf
     workload at N=4 with timing enabled.  Each DC records into its own
     [dc.apply_ns.p<k>] histogram, so skew in apply cost across
     partitions (not just row counts) is directly visible. *)
  let ci = Instrument.create () in
  let di = make_deploy ~counters:ci ~parts:4 in
  let ei = Engine.of_tc (Deploy.tc di "tc1") in
  Driver.preload ei spec;
  Metrics.set_timed ci true;
  ignore (Driver.run ei spec);
  Deploy.quiesce di;
  Metrics.set_timed ci false;
  print_hists
    ~title:"E2  Per-partition apply latency (N=4, observability on)" ci
    ("dc.apply_ns" :: List.init 4 (Printf.sprintf "dc.apply_ns.p%d"));
  let committed, after_crash, violations = run_resilience ~parts:4 in
  print_table
    ~title:
      "E2  Resilience: hard-kill dc1 of 4 mid-workload, single-partition \
       restart"
    ~header:[ "metric"; "value" ]
    [
      [ "transactions committed"; string_of_int committed ];
      [ "committed at/after the kill"; string_of_int after_crash ];
      [ "auditor violations"; string_of_int (List.length violations) ];
    ];
  List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) violations;
  if violations <> [] || committed < resilience_txns * 9 / 10 then begin
    Printf.printf "E2 FAILED: resilience run lost transactions or state\n";
    exit 1
  end;
  Printf.printf
    "claim check: partitioning is deployment-level scaling — load spreads \
     evenly over DCs\n(row spread ~1), messages per transaction stay flat, \
     and one partition's crash\nneither stops its siblings nor loses a \
     committed record.\n"
