(* E10 — Interaction contracts under message-level adversity
   (paper Section 4.2).

   Unique request ids + TC resend + DC idempotence must give
   exactly-once execution of logical operations whatever the transport
   does.  We sweep loss/duplication probabilities — applied to BOTH
   logical channels, data and control, since the control plane rides
   the same transport — count the resends and absorbed duplicates the
   contracts generate, report the measured wire bytes per channel, and
   verify the final database is byte-identical to the reliable run.

   The last row is the hard case: a chaotic transport on both channels
   with the frame-corruption fault armed (checksum-failed frames are
   dropped on delivery), plus a full TC-crash and DC-crash cycle
   mid-workload — so the restart barriers and recovery redo themselves
   run over the corrupting wire. *)

open Bench_util
module Kernel = Untx_kernel.Kernel
module Transport = Untx_kernel.Transport
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Stored_record = Untx_dc.Stored_record
module Fault = Untx_fault.Fault

let table = "kv"

let ok = function
  | `Ok v -> v
  | `Blocked -> failwith "blocked"
  | `Fail m -> failwith m

let workload ?(at_boundary = fun _ -> ()) k =
  (* keys known-inserted so far, maintained only across *committed* txns *)
  let known = Hashtbl.create 1024 in
  for t = 0 to 199 do
    at_boundary t;
    let txn = Kernel.begin_txn k in
    let staged = ref [] in
    for i = 0 to 9 do
      let key = Printf.sprintf "k%04d" (((t * 13) + (i * 29)) mod 800) in
      if Hashtbl.mem known key || List.mem key !staged then
        ok (Kernel.update k txn ~table ~key ~value:(Printf.sprintf "%d.%d" t i))
      else begin
        staged := key :: !staged;
        ok (Kernel.insert k txn ~table ~key ~value:(Printf.sprintf "%d.%d" t i))
      end
    done;
    if t mod 3 = 0 then Kernel.abort k txn ~reason:"mix in rollbacks"
    else begin
      ok (Kernel.commit k txn);
      List.iter (fun key -> Hashtbl.replace known key ()) !staged
    end
  done;
  Kernel.quiesce k

let state k =
  List.map
    (fun (key, r) -> (key, Stored_record.committed r))
    (Dc.dump_table (Kernel.dc k) table)

let row_of label k t =
  let tc = Kernel.tc k in
  let transport = Kernel.transport k in
  [
    label;
    fmt_f (200. /. t);
    string_of_int (Tc.messages_sent tc);
    string_of_int (Tc.resends tc);
    string_of_int (Transport.dropped transport);
    string_of_int (Transport.duplicated transport);
    string_of_int (Transport.corrupt_dropped transport);
    string_of_int (Dc.dup_absorbed (Kernel.dc k));
    string_of_int (Transport.data_bytes_sent transport);
    string_of_int (Transport.control_bytes_sent transport);
  ]

(* Each policy runs with timing on so the data-channel round trip
   (first send to ack — resends lengthen it, they don't reset it) is
   captured per policy: adversity should show up as tail latency, not
   just as counter deltas. *)
let rtt_row label counters =
  match Metrics.hist_snapshot counters "tc.data_rtt_ns" with
  | None -> None
  | Some s ->
    Some
      [
        label;
        string_of_int s.Metrics.s_count;
        Metrics.fmt_ns (Metrics.percentile s 50.);
        Metrics.fmt_ns (Metrics.percentile s 95.);
        Metrics.fmt_ns (Metrics.percentile s 99.);
        Metrics.fmt_ns s.Metrics.s_max;
      ]

let run_policy label policy =
  let counters = Instrument.create () in
  let k = make_kernel ~policy ~seed:101 ~counters () in
  Metrics.set_timed counters true;
  let (), t = time (fun () -> workload k) in
  Metrics.set_timed counters false;
  (row_of label k t, state k, rtt_row label counters)

(* Chaotic policy on both channels, 5% of all frames corrupted on the
   wire (caught by the checksum gate and dropped), and a hard kill of
   each component at a fixed transaction boundary.  The commit protocol
   is synchronous, so every transaction committed before the kill is
   stably logged; recovery must redo it over the same corrupting
   transport and land on the reliable run's exact final state. *)
let run_crash_cycle label policy =
  let counters = Instrument.create () in
  let k = make_kernel ~policy ~seed:101 ~counters () in
  Metrics.set_timed counters true;
  Fault.arm ~seed:7 [ Fault.crash_with_prob "transport.frame.corrupt" 0.05 ];
  let (), t =
    time (fun () ->
        workload k ~at_boundary:(fun i ->
            if i = 60 then Kernel.crash_tc k;
            if i = 140 then Kernel.crash_dc k))
  in
  Fault.disarm ();
  Metrics.set_timed counters false;
  (row_of label k t, state k, rtt_row label counters)

let run () =
  let mk drop dup =
    { Transport.delay_min = 0; delay_max = 2; reorder = true;
      dup_prob = dup; drop_prob = drop }
  in
  let rows_states =
    [
      run_policy "reliable" Transport.reliable;
      run_policy "drop 5%" (mk 0.05 0.);
      run_policy "dup 10%" (mk 0. 0.1);
      run_policy "drop 10% + dup 10%" (mk 0.1 0.1);
      run_policy "drop 25% + dup 25%" (mk 0.25 0.25);
      run_crash_cycle "chaos + corrupt 5% + TC&DC crash" (mk 0.1 0.1);
    ]
  in
  print_table
    ~title:
      "E10  Exactly-once under adversity (200 txns x 10 writes, 1/3 \
       aborted; both channels adversarial)"
    ~header:
      [ "transport"; "txns/s"; "msgs"; "resends"; "dropped"; "duplicated";
        "corrupt"; "dups absorbed"; "data B"; "ctl B" ]
    (List.map (fun (r, _, _) -> r) rows_states);
  print_table
    ~title:
      "E10  Data-channel round trip per policy (first send to ack; resends \
       lengthen, never reset)"
    ~header:[ "transport"; "n"; "p50"; "p95"; "p99"; "max" ]
    (List.filter_map (fun (_, _, r) -> r) rows_states);
  let reference = (fun (_, s, _) -> s) (List.hd rows_states) in
  let all_equal =
    List.for_all (fun (_, s, _) -> s = reference) (List.tl rows_states)
  in
  Printf.printf
    "claim check: final states across all transports identical to the \
     reliable run: %s\n(resend + unique request ids + idempotence = \
     exactly-once, Section 4.2; byte counts are\nmeasured from the encoded \
     frames, so adversity shows up as real extra wire traffic).\n"
    (if all_equal then "YES" else "NO — CONTRACT VIOLATION");
  if not all_equal then failwith "E10: exactly-once violated"
