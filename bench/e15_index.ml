(* E15 — secondary-index maintenance cost.

   An index entry is an ordinary record maintained through the normal
   TC dispatch path inside the user's transaction (Section 3's logical
   multi-record operations), so every index adds entry writes — and
   their messages, locks and log bytes — to the primary write path.
   This experiment prices that choice:

   - the same write mix over the same partitioned deployment with 0, 1
     and 2 secondary indexes, reporting txns/s, per-transaction cost
     and messages per committed transaction;
   - a Zipfian skew sweep of the differential [indexed_zipf] workload
     (hot keys concentrate entry churn on few secondary keys, which
     under secondary-hash placement concentrates it on one partition).

   Acceptance gate: with one secondary index the per-transaction write
   cost stays within 2x the unindexed write path, every index-parity
   audit is clean, and every sweep point finishes with zero
   differential violations. *)

open Bench_util
module Deploy = Untx_cloud.Deploy
module Index = Untx_index.Index
module Workload = Untx_workload.Workload
module Audit = Untx_audit.Audit
module Instrument = Untx_util.Instrument

let table = "items"

let extract_cat ~key:_ ~value =
  match String.index_opt value ':' with
  | Some i -> [ String.sub value 0 i ]
  | None -> []

let extract_len ~key:_ ~value =
  [ Printf.sprintf "len%02d" (String.length value / 16) ]

let all_indexes =
  [ ("by_cat", extract_cat); ("by_len", extract_len) ]

let make_deploy ~n_indexes () =
  let counters = Instrument.create () in
  let idx = Index.create () in
  let d = Deploy.create ~counters ~seed:15 () in
  ignore
    (Deploy.add_tc d ~name:"tc1"
       (Tc.default_config (Tc_id.of_int 1)));
  let dc_names = [ "dc0"; "dc1" ] in
  List.iter
    (fun name -> ignore (Deploy.add_dc d ~name Dc.default_config))
    dc_names;
  let indexes =
    List.filteri (fun i _ -> i < n_indexes) all_indexes
  in
  if indexes = [] then
    Deploy.add_partitioned_table d ~name:table ~versioned:true ~dcs:dc_names ()
  else
    Deploy.add_indexed_table d ~idx ~name:table ~versioned:true ~dcs:dc_names
      ~indexes ();
  (d, idx, counters)

(* The same seeded write mix against every variant: mostly inserts
   until the working set fills, then updates (which on an indexed
   table cost an extra read to diff old vs new entries) with a sprinkle
   of deletes.  Indexed variants route through the Index wrappers,
   the unindexed one through Tc directly — exactly the two code paths
   an application would use. *)
let run_writes ~txns ~ops (d, idx, _) ~indexed =
  let tc = Deploy.tc d "tc1" in
  let rng = Random.State.make [| 0xE15 |] in
  let live = Hashtbl.create 512 in
  let committed = ref 0 in
  for _ = 1 to txns do
    let txn = Tc.begin_txn tc in
    let ok = ref true in
    let staged = ref [] in
    for _ = 1 to ops do
      if !ok then begin
        let k = Random.State.int rng 2_000 in
        let key = Printf.sprintf "k%05d" k in
        let value =
          Printf.sprintf "c%d:v-%06d-%024d" (k mod 7)
            (Random.State.int rng 1_000_000)
            k
        in
        let r =
          if Hashtbl.mem live key then
            if Random.State.float rng 1.0 < 0.1 then begin
              staged := (key, None) :: !staged;
              if indexed then Index.delete idx tc txn ~table ~key
              else Tc.delete tc txn ~table ~key
            end
            else begin
              staged := (key, Some ()) :: !staged;
              if indexed then Index.update idx tc txn ~table ~key ~value
              else Tc.update tc txn ~table ~key ~value
            end
          else begin
            staged := (key, Some ()) :: !staged;
            if indexed then Index.insert idx tc txn ~table ~key ~value
            else Tc.insert tc txn ~table ~key ~value
          end
        in
        match r with
        | `Ok () -> ()
        | `Blocked | `Fail _ ->
          ok := false;
          Tc.abort tc txn ~reason:"e15: refused op"
      end
    done;
    if !ok then
      match Tc.commit tc txn with
      | `Ok () ->
        incr committed;
        List.iter
          (fun (key, v) ->
            match v with
            | Some () -> Hashtbl.replace live key ()
            | None -> Hashtbl.remove live key)
          (List.rev !staged)
      | `Blocked | `Fail _ -> ()
  done;
  !committed

let run_cost_comparison () =
  let txns = 1_500 and ops = 4 in
  let variant n_indexes =
    let ((d, idx, counters) as env) = make_deploy ~n_indexes () in
    let committed, t =
      time (fun () -> run_writes ~txns ~ops env ~indexed:(n_indexes > 0))
    in
    Deploy.quiesce d;
    let parity =
      if n_indexes = 0 then [] else Audit.check_index d ~idx ~table
    in
    (n_indexes, committed, t, Instrument.get counters "transport.delivered",
     parity)
  in
  let results = List.map variant [ 0; 1; 2 ] in
  let cost_of (_, committed, t, _, _) =
    t *. 1000. /. float_of_int (max 1 committed)
  in
  let base = cost_of (List.hd results) in
  print_table
    ~title:
      (Printf.sprintf
         "E15  Indexed vs unindexed write path (%d txns x %d writes, 2 \
          partitions, versioned)"
         txns ops)
    ~header:
      [ "secondary indexes"; "txns/s"; "ms/txn"; "msgs/txn"; "vs unindexed";
        "index parity" ]
    (List.map
       (fun ((n, committed, t, msgs, parity) as r) ->
         [
           string_of_int n;
           fmt_f (float_of_int committed /. t);
           fmt_f2 (cost_of r);
           fmt_f2 (per msgs committed);
           fmt_f2 (cost_of r /. base);
           (if n = 0 then "-"
            else if parity = [] then "clean"
            else Printf.sprintf "%d VIOLATIONS" (List.length parity));
         ])
       results);
  List.iter
    (fun (n, _, _, _, parity) ->
      List.iter
        (fun v -> Printf.printf "E15 parity (%d indexes): %s\n" n v)
        parity)
    results;
  let _, _, _, _, parity1 = List.nth results 1 in
  let overhead1 = cost_of (List.nth results 1) /. base in
  (overhead1, List.concat_map (fun (_, _, _, _, p) -> p) results, parity1)

let run_skew_sweep () =
  let base_spec = Workload.find "indexed_zipf" in
  let sweep = [ 0.0; 0.5; 0.9; 0.99 ] in
  let rows, violations =
    List.fold_left
      (fun (rows, violations) theta ->
        let spec =
          {
            base_spec with
            Workload.w_name =
              Printf.sprintf "indexed_zipf@%.1f" theta;
            w_theta = theta;
            w_txns = 150;
          }
        in
        let (r, _env), t = time (fun () -> Workload.run ~seed:0xE15 spec) in
        let row =
          [
            fmt_f2 theta;
            string_of_int r.Workload.r_committed;
            string_of_int r.Workload.r_aborted;
            string_of_int r.Workload.r_crashes;
            string_of_int r.Workload.r_checks;
            fmt_f (float_of_int r.Workload.r_committed /. t);
            string_of_int (List.length r.Workload.r_violations);
          ]
        in
        (rows @ [ row ], violations @ r.Workload.r_violations))
      ([], []) sweep
  in
  print_table
    ~title:
      "E15  Zipfian skew sweep: differential indexed_zipf workload (150 \
       txns, 2 indexes, scripted kills)"
    ~header:
      [ "theta"; "committed"; "aborted"; "crashes"; "diff checks"; "txns/s";
        "violations" ]
    rows;
  List.iter (fun v -> Printf.printf "E15 sweep violation: %s\n" v) violations;
  violations

let run () =
  let overhead1, parity_violations, _ = run_cost_comparison () in
  let sweep_violations = run_skew_sweep () in
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        ( overhead1 <= 2.0,
          Printf.sprintf
            "1-index write path costs %.2fx the unindexed path (gate: 2x)"
            overhead1 );
        (parity_violations = [], "index-parity violations after the cost runs");
        (sweep_violations = [], "differential violations in the skew sweep");
      ]
  in
  if problems <> [] then begin
    List.iter (fun m -> Printf.printf "E15 FAILED: %s\n" m) problems;
    exit 1
  end;
  Printf.printf
    "E15 ok: 1-index overhead %.2fx (gate 2x), index parity clean, skew \
     sweep violation-free\n"
    overhead1
