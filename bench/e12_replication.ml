(* E12 — warm-standby replication: what failover buys and what the
   durability gate costs.

   Four measurements over 1-TC x 2-partition deployments where every
   partition has warm standbys fed by continuous redo shipping:

   1. Losing a primary, two ways.  Cold path: crash + rebuild from
      stable state + re-drive the whole stable log ([Deploy.crash_dc]).
      Warm path: promote the most-caught-up standby and re-drive only
      the gap between its applied LSN and end-of-stable-log
      ([Deploy.fail_over]).  The redo gap — not the wall clock — is the
      structural story: it stays bounded by one shipping batch while the
      cold path's redo grows with the log.

   2. Replication lag, as the shipping engine itself records it: the
      [repl.lag_lsn] histogram samples (end-of-stable-log − confirmed
      applied) at every ack.

   3. The price of [Quorum k] durability: per-commit latency when the
      group-commit force additionally waits for k standby acks per
      replicated primary, vs [Primary_only] where standbys trail
      asynchronously.

   4. The catch-up price of promoting a detached laggard: the standby
      freezes a fifth of the way in, a granted checkpoint advances the
      redo-scan start point past its cursor, and [Deploy.fail_over]
      must first re-ship the retained suffix before installing it.
      Measured beside a caught-up promotion and a cold restart of the
      same workload — the ordering cold >> catch-up > caught-up is the
      expected shape, with zero loss in every column. *)

module Deploy = Untx_cloud.Deploy
module Repl = Untx_repl.Repl
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Transport = Untx_kernel.Transport
module Tc_id = Untx_util.Tc_id
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics

let table = "kv"

let make_deploy ?counters ?policy ?durability ~replicas () =
  let d = Deploy.create ?counters ?policy ?durability () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let dcs = [ "dc0"; "dc1" ] in
  List.iter (fun n -> ignore (Deploy.add_dc d ~name:n Dc.default_config)) dcs;
  Deploy.add_partitioned_table d ~replicas ~name:table ~versioned:false ~dcs ();
  (d, tc)

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table ~key ~value with
  | `Ok () -> ()
  | `Blocked -> failwith "blocked"
  | `Fail _ -> (
    match Tc.insert tc txn ~table ~key ~value with
    | `Ok () -> ()
    | `Blocked | `Fail _ -> failwith "insert failed"));
  match Tc.commit tc txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ -> failwith "commit failed"

let workload tc n =
  for i = 0 to n - 1 do
    commit_one tc
      ~key:(Printf.sprintf "k%03d" (i mod 200))
      ~value:(Printf.sprintf "v%d" i)
  done

(* --- 1: cold restart-redo vs failover ------------------------------- *)

let run_loss_comparison () =
  let rows, speedups =
    List.split
      (List.map
         (fun n ->
           (* identical workloads on two identical deployments; only the
              way dc0 "dies" differs *)
           let cold_c = Instrument.create () in
           let cold_d, cold_tc = make_deploy ~counters:cold_c ~replicas:2 () in
           workload cold_tc n;
           let sent0 = Instrument.get cold_c "tc.requests_sent" in
           let (), cold_s =
             Bench_util.time (fun () -> Deploy.crash_dc cold_d "dc0")
           in
           let cold_redo = Instrument.get cold_c "tc.requests_sent" - sent0 in

           let warm_c = Instrument.create () in
           Metrics.set_timed warm_c true;
           let warm_d, warm_tc = make_deploy ~counters:warm_c ~replicas:2 () in
           workload warm_tc n;
           let m = Deploy.manager warm_d ~tc:"tc1" in
           let gap =
             List.fold_left
               (fun acc name -> min acc (Repl.Manager.lag m ~name))
               max_int
               (Deploy.replicas warm_d ~dc:"dc0")
           in
           let sent0 = Instrument.get warm_c "tc.requests_sent" in
           let (), warm_s =
             Bench_util.time (fun () -> Deploy.fail_over warm_d ~dc:"dc0")
           in
           let warm_redo = Instrument.get warm_c "tc.requests_sent" - sent0 in
           (* both survivors must still serve *)
           workload cold_tc 5;
           workload warm_tc 5;
           let speedup = cold_s /. Float.max warm_s 1e-9 in
           ( [
               string_of_int n;
               Printf.sprintf "%.2f" (cold_s *. 1e3);
               string_of_int cold_redo;
               Printf.sprintf "%.2f" (warm_s *. 1e3);
               string_of_int warm_redo;
               string_of_int gap;
               Printf.sprintf "%.1fx" speedup;
             ],
             speedup ))
         [ 100; 300; 600 ])
  in
  Bench_util.print_table
    ~title:"E12: losing a primary — cold restart-redo vs standby promotion"
    ~header:
      [
        "txns";
        "cold ms";
        "cold redo ops";
        "failover ms";
        "failover redo ops";
        "lag at kill (lsns)";
        "speedup";
      ]
    rows;
  speedups

(* --- 2: replication lag ---------------------------------------------- *)

let lag_row ~label counters =
  match Metrics.hist_snapshot counters "repl.lag_lsn" with
  | None -> [ label; "0"; "-"; "-"; "-"; "-" ]
  | Some s ->
    [
      label;
      string_of_int s.Metrics.s_count;
      string_of_int (Metrics.percentile s 50.);
      string_of_int (Metrics.percentile s 95.);
      string_of_int (Metrics.percentile s 99.);
      string_of_int s.Metrics.s_max;
    ]

let run_lag () =
  (* a delaying, reordering wire (no losses): shipped batches and their
     acks sit in flight for a few ticks, so the lag the engine observes
     at each pump is the real catch-up distance, not always zero *)
  let delayed =
    { Transport.reliable with delay_min = 0; delay_max = 3; reorder = true }
  in
  let rows =
    List.map
      (fun (label, durability) ->
        let counters = Instrument.create () in
        let d, tc =
          make_deploy ~counters ~policy:delayed ~durability ~replicas:2 ()
        in
        workload tc 300;
        Deploy.quiesce d;
        lag_row ~label counters)
      [
        ("Primary_only", Repl.Primary_only);
        ("Quorum 1", Repl.Quorum 1);
        ("Quorum 2", Repl.Quorum 2);
      ]
  in
  Bench_util.print_table
    ~title:"E12: replication lag at ack time (repl.lag_lsn, in LSNs)"
    ~header:[ "durability"; "samples"; "p50"; "p95"; "p99"; "max" ]
    rows

(* --- 3: durability-gate cost ------------------------------------------ *)

let run_gate_cost () =
  let n = 400 in
  (* throwaway run so allocator/GC state does not bill the first row *)
  (let d, tc = make_deploy ~durability:(Repl.Quorum 1) ~replicas:2 () in
   workload tc 200;
   Deploy.quiesce d);
  let rows =
    List.map
      (fun (label, durability, replicas) ->
        (* best of three fresh deployments: at tens of milliseconds per
           run, a single GC major slice would dominate the comparison *)
        let runs =
          List.init 3 (fun _ ->
              let counters = Instrument.create () in
              let d, tc = make_deploy ~counters ~durability ~replicas () in
              (* warm the key space so the timed loop is all updates *)
              workload tc 200;
              let (), s = Bench_util.time (fun () -> workload tc n) in
              Deploy.quiesce d;
              (s, Instrument.get counters "repl.ships"))
        in
        let s =
          List.fold_left (fun acc (s, _) -> Float.min acc s) max_float runs
        and ships = snd (List.hd runs) in
        [
          label;
          string_of_int replicas;
          Printf.sprintf "%.1f" (s *. 1e3);
          Printf.sprintf "%.1f" (s *. 1e6 /. float_of_int n);
          string_of_int ships;
        ])
      [
        ("no replication", Repl.Primary_only, 0);
        ("Primary_only", Repl.Primary_only, 2);
        ("Quorum 1", Repl.Quorum 1, 2);
        ("Quorum 2", Repl.Quorum 2, 2);
      ]
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf "E12: durability-gate cost (%d update txns, 2 parts)" n)
    ~header:[ "durability"; "replicas"; "total ms"; "us/txn"; "batches shipped" ]
    rows

(* --- 4: promoting a laggard — the catch-up price ---------------------- *)

let run_catchup_promotion () =
  let rows =
    List.map
      (fun n ->
        (* cold restart of the same shape, replicas = 1 throughout so the
           three columns compare like for like *)
        let cold_d, cold_tc = make_deploy ~replicas:1 () in
        workload cold_tc n;
        let (), cold_s =
          Bench_util.time (fun () -> Deploy.crash_dc cold_d "dc0")
        in
        workload cold_tc 5;

        (* caught-up standby: shipping has confirmed end-of-stable-log,
           so promotion re-drives at most one batch *)
        let warm_d, warm_tc = make_deploy ~replicas:1 () in
        workload warm_tc n;
        let (), warm_s =
          Bench_util.time (fun () -> Deploy.fail_over warm_d ~dc:"dc0")
        in
        workload warm_tc 5;

        (* detached laggard: frozen a fifth of the way in, a granted
           checkpoint advances the redo-scan start point past its
           cursor, and promotion must first re-ship the retained
           suffix — the repro_gap shape, timed *)
        let lag_c = Instrument.create () in
        let lag_d, lag_tc = make_deploy ~counters:lag_c ~replicas:1 () in
        let m = Deploy.manager lag_d ~tc:"tc1" in
        workload lag_tc (n / 5);
        Deploy.quiesce lag_d;
        let sbn = List.hd (Deploy.replicas lag_d ~dc:"dc0") in
        Repl.Manager.detach m ~name:sbn;
        for i = n / 5 to n - 1 do
          commit_one lag_tc
            ~key:(Printf.sprintf "k%03d" (i mod 200))
            ~value:(Printf.sprintf "v%d" i)
        done;
        Deploy.quiesce lag_d;
        let rec grant tries =
          if (not (Tc.checkpoint lag_tc)) && tries > 0 then begin
            Deploy.quiesce lag_d;
            List.iter
              (fun dc -> Dc.flush_all (Deploy.dc lag_d dc))
              [ "dc0"; "dc1" ];
            grant (tries - 1)
          end
        in
        grant 4;
        let (), lag_s =
          Bench_util.time (fun () -> Deploy.fail_over lag_d ~dc:"dc0")
        in
        let catchup = Instrument.get lag_c "repl.catchup_ops" in
        (* durability spot-check: the last write before the kill survives
           the laggard promotion *)
        let key = Printf.sprintf "k%03d" ((n - 1) mod 200) in
        (match Tc.read_committed lag_tc ~table ~key with
        | Some v when String.equal v (Printf.sprintf "v%d" (n - 1)) -> ()
        | _ ->
          Printf.printf "E12 FAILED: %s lost across catch-up promotion\n" key;
          exit 1);
        if catchup = 0 then begin
          Printf.printf
            "E12 FAILED: laggard promotion at %d txns re-shipped nothing\n" n;
          exit 1
        end;
        workload lag_tc 5;
        [
          string_of_int n;
          Printf.sprintf "%.2f" (cold_s *. 1e3);
          Printf.sprintf "%.2f" (warm_s *. 1e3);
          Printf.sprintf "%.2f" (lag_s *. 1e3);
          string_of_int catchup;
        ])
      [ 100; 300; 600 ]
  in
  Bench_util.print_table
    ~title:"E12: promoting a detached laggard — the catch-up price"
    ~header:
      [ "txns"; "cold ms"; "caught-up ms"; "catch-up ms"; "catch-up ops" ]
    rows

let run () =
  let speedups = run_loss_comparison () in
  run_lag ();
  run_gate_cost ();
  run_catchup_promotion ();
  (* acceptance: promotion must beat cold restart-redo clearly on the
     largest workload, where redo volume dominates fixed costs *)
  let last = List.nth speedups (List.length speedups - 1) in
  if last < 2. then begin
    Printf.printf
      "E12 FAILED: failover only %.1fx faster than cold restart at 600 txns\n"
      last;
    exit 1
  end;
  Printf.printf "E12 ok: failover %.1fx faster than cold restart-redo\n" last
