(* Experiment harness for the CIDR 2009 "Unbundling Transaction Services
   in the Cloud" reproduction.

   Each experiment (E1-E10) regenerates one of the paper's quantified
   claims as a table; `micro` runs the Bechamel per-operation
   benchmarks.  See DESIGN.md for the experiment index and
   EXPERIMENTS.md for recorded results.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- e5 e6    # selected experiments
     dune exec bench/main.exe -- micro    # Bechamel micro-benchmarks *)

let experiments =
  [
    ("e1", "code-path length: unbundled vs monolithic", E1_code_path.run);
    ("e2", "partitioned deployment scaling", E2_multicore.run);
    ("e3", "out-of-order arrivals and abstract LSNs", E3_out_of_order.run);
    ("e4", "page-sync policies", E4_page_sync.run);
    ("e5", "partial-failure recovery", E5_recovery.run);
    ("e6", "movie scenario without 2PC", E6_movie.run);
    ("e7", "range-locking protocols", E7_range_locks.run);
    ("e8", "cross-TC sharing modes", E8_sharing.run);
    ("e9", "system-transaction logging", E9_smo_logging.run);
    ("e10", "exactly-once contracts", E10_contracts.run);
    ("e11", "chaos soak: crash points, torn I/O, recovery audit", E11_chaos.run);
    ("e12", "replication: failover vs cold redo, lag, quorum cost",
     E12_replication.run);
    ("e13", "layered log storage: compaction, read amp, layer bootstrap",
     E13_layers.run);
    ("e14", "session front end: TC scale-out, overload shedding",
     E14_front.run);
    ("e15", "secondary indexes: maintenance cost, Zipfian skew sweep",
     E15_index.run);
    ("e16", "copy-on-write branches: fork cost, overhead, live-branch soak",
     E16_branch.run);
    ("chaos", "short fixed-seed chaos soak (the @chaos alias)", E11_chaos.run_short);
    ("ablations", "design-choice ablations A1-A5", A_ablations.run);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
  ]

let run_one name =
  match List.find_opt (fun (n, _, _) -> String.equal n name) experiments with
  | Some (n, desc, f) ->
    Printf.printf "\n################ %s — %s\n%!" (String.uppercase_ascii n)
      desc;
    f ()
  | None ->
    Printf.eprintf "unknown experiment %S; known: %s\n" name
      (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
    exit 1

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (n, _, _) -> n) experiments
  in
  List.iter run_one requested;
  print_newline ()
