(* E11 — chaos soak: deterministic crash→recover→audit cycles.

   Sweeps every fault plan from Chaos.plans () across several seeds:
   each cycle runs a randomized workload against a shadow-map oracle,
   kills the owning component at the planned instant (torn page writes,
   mid-SMO splits, partial log forces, crashes during recovery, ...),
   recovers, quiesces through the resend path, and audits the survivor
   (structure, oracle, version hygiene, abLSN idempotence).

   The whole run is a pure function of the printed base seed. *)

module Chaos = Untx_audit.Chaos
module Analyzer = Untx_obs.Analyzer

let base_seed = 0xC1D9

(* A violating cycle carries its span dump (c_trace is only populated
   on violations during soaks): print the analyzer's reconstruction —
   per-hop latencies, resend chains, orphan spans — next to the
   violation lines, so the failing cycle arrives pre-digested. *)
let print_cycle_failures cycles =
  List.iter
    (fun (c : Chaos.cycle) ->
      if c.c_violations <> [] then begin
        Printf.printf "VIOLATION plan=%s seed=%d fired=[%s]\n" c.c_label
          c.c_seed
          (String.concat "," c.c_fired);
        List.iter (fun v -> Printf.printf "  - %s\n" v) c.c_violations;
        if c.c_trace <> "" then
          Format.printf "  trace of the violating cycle:@.%a@."
            Analyzer.pp_summary
            (Analyzer.analyze (Analyzer.of_jsonl c.c_trace))
      end)
    cycles

let interesting_counters =
  [
    "tc.resends";
    "tc.request_timeouts";
    "tc.recoveries";
    "tc.control_resends";
    "transport.delivered";
    "transport.control_delivered";
    "transport.dropped";
    "transport.duplicated";
    "transport.frames_corrupted";
    "transport.corrupt_dropped";
    "transport.flush_delivered";
    "dc.dup_absorbed";
    "dc.control_dups_absorbed";
    "disk.io_retries";
    "disk.torn_writes";
    "disk.torn_pages_detected";
  ]

let run_soak ~seeds_per_plan () =
  Printf.printf "base seed: 0x%X   (rerun: every cycle is a pure function of it)\n"
    base_seed;
  let cycles, s = Chaos.soak ~base_seed ~seeds_per_plan () in
  let fired_points = List.length s.Chaos.s_fires_by_point in
  Bench_util.print_table ~title:"E11: fires per fault point"
    ~header:[ "fault point"; "fires" ]
    (List.map
       (fun (p, n) -> [ p; string_of_int n ])
       s.Chaos.s_fires_by_point);
  Bench_util.print_table ~title:"E11: soak summary"
    ~header:[ "metric"; "value" ]
    [
      [ "cycles"; string_of_int s.Chaos.s_cycles ];
      [ "cycles with a fire"; string_of_int s.Chaos.s_fired ];
      [ "distinct points fired"; string_of_int fired_points ];
      [ "injected hard kills"; string_of_int s.Chaos.s_crashes ];
      [
        "stable ops re-delivered by audits";
        string_of_int
          (List.fold_left
             (fun acc (c : Chaos.cycle) -> acc + c.c_redelivered)
             0 cycles);
      ];
      [ "auditor violations"; string_of_int (List.length s.Chaos.s_violating) ];
    ];
  Bench_util.print_table ~title:"E11: summed Instrument counters"
    ~header:[ "counter"; "total" ]
    (List.filter_map
       (fun name ->
         List.assoc_opt name s.Chaos.s_counters
         |> Option.map (fun v -> [ name; string_of_int v ]))
       interesting_counters);
  print_cycle_failures cycles;
  let fired p = List.mem_assoc p s.Chaos.s_fires_by_point in
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (s.Chaos.s_violating = [], "auditor violations");
        (s.Chaos.s_fired >= 200 || seeds_per_plan < 5,
         "fewer than 200 fired cycles");
        (fired_points >= 8, "fewer than 8 distinct points fired");
        (fired "disk.page_write.torn", "no torn page write fired");
        (fired "dc.smo.split.mid", "no mid-SMO crash fired");
      ]
  in
  if problems <> [] then begin
    List.iter (fun m -> Printf.printf "E11 FAILED: %s\n" m) problems;
    exit 1
  end;
  Printf.printf "E11 ok: %d cycles, %d fired, %d distinct points, 0 violations\n"
    s.Chaos.s_cycles s.Chaos.s_fired fired_points

(* The partitioned soak: every cycle is one TC fronting [parts]
   hash-partitioned DCs.  Fault plans kill a single partition mid-SMO,
   mid-checkpoint-grant, mid-flush and mid-WAL-force (plus double-kill
   and corrupting-wire plans); the crashed partition recovers alone
   while its siblings keep serving, and the deployment auditor checks
   every partition plus the merged oracle. *)
let run_soak_partitioned ~seeds_per_plan () =
  let parts = 3 in
  let cycles, s = Chaos.soak_partitioned ~seeds_per_plan ~parts () in
  Bench_util.print_table
    ~title:
      (Printf.sprintf "E11: partitioned soak (1 TC x %d DCs), fires per point"
         parts)
    ~header:[ "fault point"; "fires" ]
    (List.map
       (fun (p, n) -> [ p; string_of_int n ])
       s.Chaos.s_fires_by_point);
  Bench_util.print_table ~title:"E11: partitioned soak summary"
    ~header:[ "metric"; "value" ]
    [
      [ "cycles"; string_of_int s.Chaos.s_cycles ];
      [ "cycles with a fire"; string_of_int s.Chaos.s_fired ];
      [ "injected hard kills"; string_of_int s.Chaos.s_crashes ];
      [ "auditor violations"; string_of_int (List.length s.Chaos.s_violating) ];
    ];
  print_cycle_failures cycles;
  let fired p = List.mem_assoc p s.Chaos.s_fires_by_point in
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (s.Chaos.s_violating = [], "partitioned auditor violations");
        (s.Chaos.s_cycles >= 50, "fewer than 50 partitioned cycles");
        (fired "dc.smo.split.mid", "no mid-SMO partition kill fired");
        (fired "dc.checkpoint.mid", "no mid-checkpoint-grant kill fired");
      ]
  in
  if problems <> [] then begin
    List.iter (fun m -> Printf.printf "E11 FAILED: %s\n" m) problems;
    exit 1
  end;
  Printf.printf
    "E11 partitioned ok: %d cycles over %d partitions, %d kills, 0 violations\n"
    s.Chaos.s_cycles parts s.Chaos.s_crashes

(* The replicated soak: every cycle gives both partitions warm standbys
   and alternates Quorum 1 / Primary_only durability by seed.  Kills at
   the shipped-batch boundary are answered by standby promotion instead
   of a cold restart; standby-side kills crash and rejoin the standby.
   The auditor additionally holds every surviving standby to logical
   parity with its primary. *)
let run_soak_replicated ~seeds_per_plan () =
  let parts = 2 and replicas = 2 in
  let cycles, s = Chaos.soak_replicated ~seeds_per_plan ~parts ~replicas () in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E11: replicated soak (1 TC x %d DCs x %d standbys), fires per point"
         parts replicas)
    ~header:[ "fault point"; "fires" ]
    (List.map
       (fun (p, n) -> [ p; string_of_int n ])
       s.Chaos.s_fires_by_point);
  let promotions =
    Option.value ~default:0 (List.assoc_opt "repl.promotions" s.Chaos.s_counters)
  in
  Bench_util.print_table ~title:"E11: replicated soak summary"
    ~header:[ "metric"; "value" ]
    [
      [ "cycles"; string_of_int s.Chaos.s_cycles ];
      [ "cycles with a fire"; string_of_int s.Chaos.s_fired ];
      [ "injected hard kills"; string_of_int s.Chaos.s_crashes ];
      [ "standby promotions"; string_of_int promotions ];
      [
        "batches shipped";
        string_of_int
          (Option.value ~default:0
             (List.assoc_opt "repl.ships" s.Chaos.s_counters));
      ];
      [ "auditor violations"; string_of_int (List.length s.Chaos.s_violating) ];
    ];
  print_cycle_failures cycles;
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (s.Chaos.s_violating = [], "replicated auditor violations");
        (List.mem_assoc "repl.ship.batch" s.Chaos.s_fires_by_point,
         "no shipped-batch kill fired");
        (promotions >= 1, "no standby was ever promoted");
      ]
  in
  if problems <> [] then begin
    List.iter (fun m -> Printf.printf "E11 FAILED: %s\n" m) problems;
    exit 1
  end;
  Printf.printf
    "E11 replicated ok: %d cycles, %d kills, %d promotions, 0 violations\n"
    s.Chaos.s_cycles s.Chaos.s_crashes promotions

(* The detach soak: every cycle detaches dc0's sole standby a quarter
   in, lands a granted checkpoint past its frozen cursor mid-workload
   (burning its retention lease), and promotes it at the three-quarter
   mark.  The promotion must catch the laggard up from the retained log
   — or, under the forced-lease-expiry plan, refuse and cold-restart.
   Either way the auditor must find every acked commit. *)
let run_soak_detach ~seeds_per_plan () =
  let parts = 2 and replicas = 1 in
  let cycles, s = Chaos.soak_detach ~seeds_per_plan ~parts ~replicas () in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E11: detach/checkpoint/promote soak (1 TC x %d DCs x %d standby), \
          fires per point"
         parts replicas)
    ~header:[ "fault point"; "fires" ]
    (List.map
       (fun (p, n) -> [ p; string_of_int n ])
       s.Chaos.s_fires_by_point);
  let counter name =
    Option.value ~default:0 (List.assoc_opt name s.Chaos.s_counters)
  in
  let promotions = counter "repl.promotions"
  and refusals = counter "repl.promote_refusals"
  and catchup_ops = counter "repl.catchup_ops"
  and expirations = counter "repl.lease_expirations" in
  Bench_util.print_table ~title:"E11: detach soak summary"
    ~header:[ "metric"; "value" ]
    [
      [ "cycles"; string_of_int s.Chaos.s_cycles ];
      [ "injected hard kills"; string_of_int s.Chaos.s_crashes ];
      [ "laggard promotions"; string_of_int promotions ];
      [ "promotions refused (cold restart instead)"; string_of_int refusals ];
      [ "catch-up ops re-shipped at promotion"; string_of_int catchup_ops ];
      [ "retention leases expired"; string_of_int expirations ];
      [ "auditor violations"; string_of_int (List.length s.Chaos.s_violating) ];
    ];
  print_cycle_failures cycles;
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (s.Chaos.s_violating = [], "detach-soak auditor violations");
        (promotions >= 1, "no laggard was ever promoted");
        (catchup_ops >= 1, "promotion never had to catch a laggard up");
        ( List.mem_assoc "repl.lease.expire" s.Chaos.s_fires_by_point,
          "no forced lease expiry fired" );
        (refusals >= 1, "forced lease expiry never produced a refusal");
        (expirations >= 1, "no retention lease ever expired");
      ]
  in
  if problems <> [] then begin
    List.iter (fun m -> Printf.printf "E11 FAILED: %s\n" m) problems;
    exit 1
  end;
  Printf.printf
    "E11 detach ok: %d cycles, %d promotions (%d catch-up ops), %d refusals, \
     0 violations\n"
    s.Chaos.s_cycles promotions catchup_ops refusals

(* The multi-TC soak: two TCs behind the session front end, one
   hard-killed at the midpoint with queued transactions on its
   sessions.  The auditor runs per TC and includes the cross-TC
   watermark check, so the victim's crash leaking into the survivor's
   watermark slots — or a checkpoint truncating the other TC's redo
   window — is a reported violation. *)
let run_soak_mtc ~seeds_per_plan () =
  let parts = 2 in
  let cycles, s = Chaos.soak_mtc ~seeds_per_plan ~parts () in
  let counter name =
    Option.value ~default:0 (List.assoc_opt name s.Chaos.s_counters)
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf "E11: multi-TC front-end soak (2 TCs x %d DCs) summary"
         parts)
    ~header:[ "metric"; "value" ]
    [
      [ "cycles"; string_of_int s.Chaos.s_cycles ];
      [ "injected TC kills"; string_of_int s.Chaos.s_crashes ];
      [ "transactions admitted"; string_of_int (counter "front.admitted") ];
      [ "admissions shed"; string_of_int (counter "front.shed") ];
      [ "commits that rode a batch"; string_of_int (counter "front.batched") ];
      [ "misattributed frames"; string_of_int (counter "dc.misattributed") ];
      [ "auditor violations"; string_of_int (List.length s.Chaos.s_violating) ];
    ];
  print_cycle_failures cycles;
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (s.Chaos.s_violating = [], "multi-TC auditor violations");
        (s.Chaos.s_crashes >= s.Chaos.s_cycles, "a cycle never killed its TC");
        (counter "front.admitted" > 0, "the front never admitted work");
        (counter "front.batched" > 0, "group commit never batched");
      ]
  in
  if problems <> [] then begin
    List.iter (fun m -> Printf.printf "E11 FAILED: %s\n" m) problems;
    exit 1
  end;
  Printf.printf
    "E11 multi-TC ok: %d cycles, %d TC kills under load, 0 violations\n"
    s.Chaos.s_cycles s.Chaos.s_crashes

(* The indexed soak: every cycle routes all mutations through the
   Index wrappers on a table carrying two secondary indexes, under a
   seed-picked Section 3.1 lock protocol.  Fault plans kill
   mid-entry-table-SMO, mid-flush, mid-WAL-force and at both
   commit-force edges; the audit holds every merged entry table to
   exact parity with the image of the surviving primary rows. *)
let run_soak_indexed ~seeds_per_plan () =
  let parts = 2 in
  let cycles, s = Chaos.soak_indexed ~seeds_per_plan ~parts () in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E11: indexed soak (1 TC x %d DCs, 2 secondary indexes), fires per \
          point"
         parts)
    ~header:[ "fault point"; "fires" ]
    (List.map
       (fun (p, n) -> [ p; string_of_int n ])
       s.Chaos.s_fires_by_point);
  Bench_util.print_table ~title:"E11: indexed soak summary"
    ~header:[ "metric"; "value" ]
    [
      [ "cycles"; string_of_int s.Chaos.s_cycles ];
      [ "cycles with a fire"; string_of_int s.Chaos.s_fired ];
      [ "injected hard kills"; string_of_int s.Chaos.s_crashes ];
      [ "auditor violations"; string_of_int (List.length s.Chaos.s_violating) ];
    ];
  print_cycle_failures cycles;
  let fired p = List.mem_assoc p s.Chaos.s_fires_by_point in
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (s.Chaos.s_violating = [], "indexed auditor violations");
        (fired "dc.smo.split.mid", "no mid-SMO kill fired on an entry table");
        (s.Chaos.s_crashes >= 1, "no cycle ever killed a component");
      ]
  in
  if problems <> [] then begin
    List.iter (fun m -> Printf.printf "E11 FAILED: %s\n" m) problems;
    exit 1
  end;
  Printf.printf
    "E11 indexed ok: %d cycles, %d kills, index parity clean, 0 violations\n"
    s.Chaos.s_cycles s.Chaos.s_crashes

(* The branch soak: every cycle forks a copy-on-write branch at the
   stable LSN a third into the workload, drives parent and branch over
   the same key space, compacts + truncates the parent (the cut must
   clamp at the live fork pin) and kills the branch DC at the two-thirds
   mark.  The audit adds branch-parity to the full deployment audit:
   the branch tracks its own shadow map and the shared prefix at the
   fork point stays bit-identical. *)
let run_soak_branch ~seeds_per_plan () =
  let parts = 2 in
  let cycles, s = Chaos.soak_branch ~seeds_per_plan ~parts () in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E11: branch soak (1 TC x %d DCs + CoW branch), fires per point"
         parts)
    ~header:[ "fault point"; "fires" ]
    (List.map
       (fun (p, n) -> [ p; string_of_int n ])
       s.Chaos.s_fires_by_point);
  Bench_util.print_table ~title:"E11: branch soak summary"
    ~header:[ "metric"; "value" ]
    [
      [ "cycles"; string_of_int s.Chaos.s_cycles ];
      [ "cycles with a fire"; string_of_int s.Chaos.s_fired ];
      [ "injected hard kills"; string_of_int s.Chaos.s_crashes ];
      [ "auditor violations"; string_of_int (List.length s.Chaos.s_violating) ];
    ];
  print_cycle_failures cycles;
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (s.Chaos.s_violating = [], "branch auditor violations");
        (s.Chaos.s_crashes >= 1, "no cycle ever killed a component");
      ]
  in
  if problems <> [] then begin
    List.iter (fun m -> Printf.printf "E11 FAILED: %s\n" m) problems;
    exit 1
  end;
  Printf.printf
    "E11 branch ok: %d cycles, %d kills, branch parity clean, 0 violations\n"
    s.Chaos.s_cycles s.Chaos.s_crashes

(* The workload-bank soak: every bank spec runs differentially against
   its sequential oracle (scripted DC/TC kills included) across several
   seeds, then takes the full deployment audit — per-table oracle
   parity plus index parity for the index-maintaining specs. *)
let run_soak_workloads ~seeds_per_spec () =
  let cycles, s = Chaos.soak_workloads ~seeds_per_spec () in
  Bench_util.print_table ~title:"E11: workload-bank soak summary"
    ~header:[ "metric"; "value" ]
    [
      [ "bank specs"; string_of_int (List.length (Untx_workload.Workload.bank ())) ];
      [ "cycles"; string_of_int s.Chaos.s_cycles ];
      [ "injected DC/TC kills"; string_of_int s.Chaos.s_crashes ];
      [ "auditor violations"; string_of_int (List.length s.Chaos.s_violating) ];
    ];
  print_cycle_failures cycles;
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (s.Chaos.s_violating = [], "workload-bank violations");
        (s.Chaos.s_crashes >= s.Chaos.s_cycles,
         "a workload cycle never killed a component");
      ]
  in
  if problems <> [] then begin
    List.iter (fun m -> Printf.printf "E11 FAILED: %s\n" m) problems;
    exit 1
  end;
  Printf.printf
    "E11 workload bank ok: %d cycles over %d specs, %d kills, 0 violations\n"
    s.Chaos.s_cycles
    (List.length (Untx_workload.Workload.bank ()))
    s.Chaos.s_crashes

let run () =
  run_soak ~seeds_per_plan:7 ();
  run_soak_partitioned ~seeds_per_plan:7 ();
  run_soak_replicated ~seeds_per_plan:5 ();
  run_soak_detach ~seeds_per_plan:4 ();
  run_soak_mtc ~seeds_per_plan:6 ();
  run_soak_indexed ~seeds_per_plan:6 ();
  run_soak_branch ~seeds_per_plan:4 ();
  run_soak_workloads ~seeds_per_spec:4 ()

(* Short fixed-seed soak for the @chaos dune alias (which @ci includes):
   single-kernel plans at one seed each, plus the multi-DC soak at four
   seeds per plan — at least 50 partitioned cycles on every CI run —
   plus primary-kill + promotion cycles over the replicated plans,
   detach/checkpoint/promote cycles over the lease plans,
   TC-kill-under-load cycles over the front-end plans,
   kill-mid-index-maintenance cycles over the indexed plans, and one
   seed of every differential workload-bank spec. *)
let run_short () =
  run_soak ~seeds_per_plan:1 ();
  run_soak_partitioned ~seeds_per_plan:4 ();
  run_soak_replicated ~seeds_per_plan:3 ();
  run_soak_detach ~seeds_per_plan:2 ();
  run_soak_mtc ~seeds_per_plan:2 ();
  run_soak_indexed ~seeds_per_plan:2 ();
  run_soak_branch ~seeds_per_plan:1 ();
  run_soak_workloads ~seeds_per_spec:1 ()
