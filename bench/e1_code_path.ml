(* E1 — Code-path length: unbundled TC/DC vs the integrated baseline.

   Paper claim (Conclusion): "compared to a traditional storage kernel
   with integrated transaction management, our unbundling approach
   inevitably has longer code paths", justified by deployment
   flexibility.  We run the same transaction mix on both engines and
   report throughput plus the per-transaction footprint: messages (zero
   in the monolith — everything is a function call), log forces, lock
   acquisitions, log bytes.  The unversioned unbundled variant also
   shows the read-before-write cost of logging undo information without
   page access; versioned tables (before-versions in the DC) avoid it —
   a design point the paper's Section 6.2.2 machinery enables. *)

open Bench_util
module Driver = Untx_kernel.Driver
module Engine = Untx_kernel.Engine
module Tc = Untx_tc.Tc
module Kernel = Untx_kernel.Kernel
module Mono = Untx_baseline.Mono
module Transport = Untx_kernel.Transport

let spec =
  {
    Driver.default_spec with
    txns = 2_000;
    ops_per_txn = 6;
    read_ratio = 0.5;
    key_space = 5_000;
    concurrency = 4;
    seed = 11;
  }

let run () =
  (* unbundled, versioned (pipelined writes, version-based undo) *)
  let kv = make_kernel ~versioned:true () in
  let ev = Engine.of_kernel kv in
  Driver.preload ev spec;
  let rv, tv = time (fun () -> Driver.run ev spec) in
  (* unbundled, unversioned (read-before-write undo) *)
  let ku = make_kernel ~versioned:false () in
  let eu = Engine.of_kernel ku in
  Driver.preload eu spec;
  let ru, tu = time (fun () -> Driver.run eu spec) in
  (* monolithic *)
  let m = make_mono () in
  let em = mono_engine m in
  Driver.preload em spec;
  let rm, tm = time (fun () -> Driver.run em spec) in
  let row label (r : Driver.result) t msgs wire_bytes forces locks log_bytes =
    [
      label;
      fmt_f (float_of_int r.Driver.committed /. t);
      fmt_f2 (Untx_util.Stats.percentile r.Driver.latency 50.);
      fmt_f2 (Untx_util.Stats.percentile r.Driver.latency 99.);
      fmt_f2 (per msgs r.Driver.committed);
      string_of_int (wire_bytes / max 1 r.Driver.committed);
      fmt_f2 (per forces r.Driver.committed);
      fmt_f2 (per locks r.Driver.committed);
      string_of_int (log_bytes / max 1 r.Driver.committed);
    ]
  in
  print_table
    ~title:
      "E1  Code-path length: same mix (50% reads, 6 ops/txn), identical \
       drivers"
    ~header:
      [ "engine"; "txns/s"; "p50 ms"; "p99 ms"; "msgs/txn"; "wire B/txn";
        "forces/txn"; "locks/txn"; "log B/txn" ]
    [
      row "unbundled (versioned)" rv tv
        (Tc.messages_sent (Kernel.tc kv))
        (Transport.bytes_sent (Kernel.transport kv))
        (Tc.log_forces (Kernel.tc kv))
        (Tc.lock_acquisitions (Kernel.tc kv))
        (Tc.log_bytes (Kernel.tc kv));
      row "unbundled (unversioned)" ru tu
        (Tc.messages_sent (Kernel.tc ku))
        (Transport.bytes_sent (Kernel.transport ku))
        (Tc.log_forces (Kernel.tc ku))
        (Tc.lock_acquisitions (Kernel.tc ku))
        (Tc.log_bytes (Kernel.tc ku));
      row "monolithic baseline" rm tm 0 0 (Mono.log_forces m)
        (Mono.lock_acquisitions m) (Mono.log_bytes m);
    ];
  Printf.printf
    "claim check: the monolith exchanges 0 messages; the unbundled kernel \
     pays per-op messages\n\
     (wire B/txn is measured from the encoded frames, both channels) and an \
     extra read-before-write\n\
     on unversioned tables for its deployment flexibility.\n";
  (* Instrumented re-run: the same versioned engine with timing and
     tracing switched on, for the per-hop latency breakdown.  The three
     runs above execute with observability disabled — their throughput
     is the disabled baseline, so the delta against this run is the
     full cost of having spans and histograms on. *)
  let ci = Instrument.create () in
  let ki = make_kernel ~versioned:true ~counters:ci () in
  let ei = Engine.of_kernel ki in
  Driver.preload ei spec;
  Metrics.set_timed ci true;
  Trace.set_enabled true;
  let ri, ti = time (fun () -> Driver.run ei spec) in
  Trace.set_enabled false;
  Metrics.set_timed ci false;
  print_hists
    ~title:
      "E1  Per-hop latency, observability on (versioned engine, same mix)" ci
    [
      "wal.tc.append_ns";
      "tc.data_rtt_ns";
      "dc.apply_ns";
      "wal.tc.force_ns";
      "wal.dc.append_ns";
      "wal.dc.force_ns";
      "transport.frame_bytes";
    ];
  let tput (r : Driver.result) t = float_of_int r.Driver.committed /. t in
  Printf.printf
    "observability: disabled %.0f txns/s vs enabled %.0f txns/s (%+.1f%% \
     when on; the disabled\n\
     path costs one bool check per site, within run-to-run noise of the \
     untraced rows above).\n"
    (tput rv tv) (tput ri ti)
    ((tput rv tv -. tput ri ti) /. tput rv tv *. 100.)
