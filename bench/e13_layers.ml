(* E13 — the layered log storage tier: what compaction costs, what
   reads over layered history cost, and what the layers buy back.

   1. L0 -> L1 compaction cost: absorb a synthetic op stream, then merge
      the sealed runs into one sorted deduplicated L1 layer.  The merge
      is sort-dominated, so cost per op should stay flat-ish as the
      stream grows.

   2. Read amplification vs layer count: the same stream compacted into
      1, 4, or 16 L1 layers, then point-in-time lookups at random LSNs.
      Each lookup probes newest-first until a layer's range covers the
      LSN and holds the key — the probe count is the read
      amplification, recorded by the store itself (layer.read_amp).

   3. Standby creation, two ways.  Full-redo: a fresh standby attaches
      at cursor zero and shipping replays the entire stable log into
      it.  Bootstrap-from-layers: the log has been truncated (layers
      made that legal), the standby is seeded with the store's
      materialized current state, and shipping replays only the
      post-layer suffix.  The redo-op count is the structural story:
      installs replace replays, and the replayed suffix shrinks to
      (usually) nothing.

   4. The truncation floor: a detached laggard used to pin the log at
      its frozen cursor; once compaction makes its history durable in
      layers, a granted checkpoint truncates straight past it. *)

module Deploy = Untx_cloud.Deploy
module Repl = Untx_repl.Repl
module Layer = Untx_layer.Layer
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Op = Untx_msg.Op
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics

let table = "kv"

(* --- 1: compaction cost ----------------------------------------------- *)

(* A synthetic stable stream: round-robin updates over a small key
   space, fed straight into a store (no deployment in the way). *)
let synth_ops n =
  List.init n (fun i ->
      let key = Printf.sprintf "k%03d" (i mod 200) in
      if i < 200 then Op.Insert { table; key; value = Printf.sprintf "v%d" i }
      else Op.Update { table; key; value = Printf.sprintf "v%d" i })

let feed ops emit = List.iteri (fun i op -> emit (Lsn.of_int (i + 1)) op) ops

let mk_store ?counters ?l0_seal_ops () =
  Layer.create ?counters ?l0_seal_ops ~compact_runs:max_int
    ~writer:(Tc_id.of_int 1)
    ~versioned:(fun _ -> false)
    ()

let run_compaction_cost () =
  let rows =
    List.map
      (fun n ->
        let s = mk_store () in
        Layer.absorb s ~upto:(Lsn.of_int n) (feed (synth_ops n));
        let runs = Layer.l0_runs s in
        let (), sec = Bench_util.time (fun () -> Layer.compact ~all:true s) in
        [
          string_of_int n;
          string_of_int runs;
          Printf.sprintf "%.2f" (sec *. 1e3);
          Printf.sprintf "%.2f" (sec *. 1e6 /. float_of_int n);
          string_of_int (Layer.l1_entries s);
        ])
      [ 1_000; 4_000; 16_000 ]
  in
  Bench_util.print_table ~title:"E13: L0 -> L1 compaction cost"
    ~header:[ "ops"; "L0 runs"; "compact ms"; "us/op"; "L1 entries" ]
    rows

(* --- 2: read amplification vs layer count ----------------------------- *)

let run_read_amplification () =
  let n = 4_096 in
  let lookups = 2_000 in
  let ops = synth_ops n in
  let rows =
    List.map
      (fun layers ->
        let counters = Instrument.create () in
        let s = mk_store ~counters () in
        (* split the stream into [layers] chunks, compacting after each:
           every chunk becomes one L1 layer covering its LSN range *)
        let chunk = n / layers in
        List.iteri
          (fun i _ ->
            let upto = min n ((i + 1) * chunk) in
            if upto > Lsn.to_int (Layer.ingested_lsn s) then begin
              Layer.absorb s ~upto:(Lsn.of_int upto) (feed ops);
              Layer.compact ~all:true s
            end)
          (List.init layers Fun.id);
        Layer.absorb s ~upto:(Lsn.of_int n) (feed ops);
        Layer.compact ~all:true s;
        let rng = ref 0x2F6E2B1 in
        let next_int bound =
          rng := (!rng * 1103515245) + 12345;
          abs !rng mod bound
        in
        let (), sec =
          Bench_util.time (fun () ->
              for _ = 1 to lookups do
                let key = Printf.sprintf "k%03d" (next_int 200) in
                let at = Lsn.of_int (1 + next_int n) in
                ignore (Layer.reconstruct s ~table ~key ~at)
              done)
        in
        let amp =
          match Metrics.hist_snapshot counters "layer.read_amp" with
          | Some h ->
            ( Metrics.percentile h 50.,
              Metrics.percentile h 99.,
              h.Metrics.s_max )
          | None -> (0, 0, 0)
        in
        let p50, p99, mx = amp in
        [
          string_of_int (Layer.l1_layers s);
          Printf.sprintf "%.2f" (sec *. 1e6 /. float_of_int lookups);
          string_of_int p50;
          string_of_int p99;
          string_of_int mx;
        ])
      [ 1; 4; 16 ]
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E13: read amplification vs layer count (%d ops, %d lookups)" n
         lookups)
    ~header:[ "L1 layers"; "us/lookup"; "amp p50"; "amp p99"; "amp max" ]
    rows

(* --- 3 & 4: standby creation and the truncation floor ----------------- *)

let make_deploy ?counters ?(layers = false) ~replicas () =
  let d = Deploy.create ?counters ~layers () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let dcs = [ "dc0"; "dc1" ] in
  List.iter (fun n -> ignore (Deploy.add_dc d ~name:n Dc.default_config)) dcs;
  Deploy.add_partitioned_table d ~replicas ~name:table ~versioned:false ~dcs ();
  (d, tc)

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table ~key ~value with
  | `Ok () -> ()
  | `Blocked -> failwith "blocked"
  | `Fail _ -> (
    match Tc.insert tc txn ~table ~key ~value with
    | `Ok () -> ()
    | `Blocked | `Fail _ -> failwith "insert failed"));
  match Tc.commit tc txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ -> failwith "commit failed"

let workload tc n =
  for i = 0 to n - 1 do
    commit_one tc
      ~key:(Printf.sprintf "k%03d" (i mod 200))
      ~value:(Printf.sprintf "v%d" i)
  done

let grant_checkpoint d tc =
  let flush () =
    List.iter (fun dc -> Dc.flush_all (Deploy.dc d dc)) [ "dc0"; "dc1" ]
  in
  flush ();
  let rec grant tries =
    if (not (Tc.checkpoint tc)) && tries > 0 then begin
      Deploy.quiesce d;
      flush ();
      grant (tries - 1)
    end
  in
  grant 4

let run_standby_creation () =
  let rows, redo_pairs =
    List.split
      (List.map
         (fun n ->
           (* full-redo: the whole retained log re-ships into the fresh
              standby, record by record *)
           let full_c = Instrument.create () in
           let full_d, full_tc = make_deploy ~counters:full_c ~replicas:0 () in
           workload full_tc n;
           Deploy.quiesce full_d;
           let (), full_s =
             Bench_util.time (fun () ->
                 ignore (Deploy.add_replica full_d ~dc:"dc0");
                 Deploy.settle_replicas full_d)
           in
           let full_redo = Instrument.get full_c "repl.standby_ops" in

           (* bootstrap-from-layers: compaction + a granted checkpoint
              first, so the log is truncated and full redo is not even
              possible — installs replace replays *)
           let lay_c = Instrument.create () in
           let lay_d, lay_tc =
             make_deploy ~counters:lay_c ~layers:true ~replicas:0 ()
           in
           workload lay_tc n;
           Deploy.quiesce lay_d;
           let m = Deploy.manager lay_d ~tc:"tc1" in
           Repl.Manager.compact_layers m;
           grant_checkpoint lay_d lay_tc;
           let (), lay_s =
             Bench_util.time (fun () ->
                 ignore (Deploy.add_replica lay_d ~dc:"dc0");
                 Deploy.settle_replicas lay_d)
           in
           let lay_redo = Instrument.get lay_c "repl.standby_ops" in
           let installs = Instrument.get lay_c "repl.bootstrap_installs" in
           ( [
               string_of_int n;
               Printf.sprintf "%.2f" (full_s *. 1e3);
               string_of_int full_redo;
               Printf.sprintf "%.2f" (lay_s *. 1e3);
               string_of_int installs;
               string_of_int lay_redo;
             ],
             (n, full_redo, lay_redo) ))
         [ 100; 300; 600 ])
  in
  Bench_util.print_table
    ~title:"E13: standby creation — full log redo vs layer bootstrap"
    ~header:
      [
        "txns";
        "full-redo ms";
        "redo ops";
        "bootstrap ms";
        "installs";
        "redo ops (suffix)";
      ]
    rows;
  redo_pairs

let run_truncation_floor () =
  let counters = Instrument.create () in
  let d, tc = make_deploy ~counters ~layers:true ~replicas:1 () in
  workload tc 60;
  Deploy.quiesce d;
  let m = Deploy.manager d ~tc:"tc1" in
  let sbn = List.hd (Deploy.replicas d ~dc:"dc0") in
  let frozen =
    Repl.Standby.applied (Deploy.standby d sbn) ~tc:(Tc.id tc)
  in
  Repl.Manager.detach m ~name:sbn;
  workload tc 540;
  Deploy.quiesce d;
  let before = Tc.log_retained_from tc in
  Repl.Manager.compact_layers m;
  grant_checkpoint d tc;
  let after = Tc.log_retained_from tc in
  Bench_util.print_table
    ~title:"E13: log truncation with a detached laggard (600 txns)"
    ~header:
      [ "laggard cursor"; "retained before"; "retained after"; "freed lsns" ]
    [
      [
        string_of_int (Lsn.to_int frozen);
        string_of_int (Lsn.to_int before);
        string_of_int (Lsn.to_int after);
        string_of_int (Lsn.to_int after - Lsn.to_int before);
      ];
    ];
  if not Lsn.(after > Lsn.next frozen) then begin
    Printf.printf "E13 FAILED: truncation still pinned by the laggard\n";
    exit 1
  end

let run () =
  run_compaction_cost ();
  run_read_amplification ();
  let redo = run_standby_creation () in
  run_truncation_floor ();
  (* acceptance: the layer bootstrap must replay strictly fewer redo
     ops than the full-redo standby at every size, 600 included *)
  List.iter
    (fun (n, full, lay) ->
      if lay >= full then begin
        Printf.printf
          "E13 FAILED: layer bootstrap replayed %d redo ops vs full-redo %d \
           at %d txns\n"
          lay full n;
        exit 1
      end)
    redo;
  let _, full600, lay600 =
    List.nth redo (List.length redo - 1)
  in
  Printf.printf "E13 ok: bootstrap replayed %d redo ops vs %d full-redo\n"
    lay600 full600
