(* E16 — copy-on-write branches over the layered log tier.

   1. Fork cost vs database size: forking is O(metadata) — a retention
      pin plus a fresh TC/DC/transport/store — so the time to create a
      branch must stay flat while the parent grows 10x.  A fork that
      copies state would scale with the row count and fail the gate.

   2. Read/write overhead through the branch surface: the first touch
      of a key pays a materialization (one system transaction installing
      the fork-point base state); warm operations ride the branch TC's
      ordinary dispatch path and should price like the parent's.

   3. Parent compaction and history truncation with a live branch: the
      branch's fork-point pin clamps the parent's truncation cut, so
      rounds of divergent traffic + compact + truncate must leave the
      shared prefix byte-identical through both sides.  Audited with
      the same branch-parity checker the chaos soak uses. *)

module Deploy = Untx_cloud.Deploy
module Branch = Untx_branch.Branch
module Repl = Untx_repl.Repl
module Tc = Untx_tc.Tc
module Dc = Untx_dc.Dc
module Audit = Untx_audit.Audit
module Layer = Untx_layer.Layer
module Tc_id = Untx_util.Tc_id
module Lsn = Untx_util.Lsn
module Instrument = Untx_util.Instrument
module Metrics = Untx_obs.Metrics

let table = "t"

let make_deploy ?counters ~parts () =
  let d = Deploy.create ?counters ~layers:true () in
  let tc = Deploy.add_tc d ~name:"tc1" (Tc.default_config (Tc_id.of_int 1)) in
  let dcs = List.init parts (Printf.sprintf "dc%d") in
  List.iter (fun n -> ignore (Deploy.add_dc d ~name:n Dc.default_config)) dcs;
  Deploy.add_partitioned_table d ~replicas:0 ~name:table ~versioned:false ~dcs
    ();
  (d, tc)

let commit_one tc ~key ~value =
  let txn = Tc.begin_txn tc in
  (match Tc.update tc txn ~table ~key ~value with
  | `Ok () -> ()
  | `Blocked -> failwith "blocked"
  | `Fail _ -> (
    match Tc.insert tc txn ~table ~key ~value with
    | `Ok () -> ()
    | `Blocked | `Fail _ -> failwith "insert failed"));
  match Tc.commit tc txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ -> failwith "commit failed"

let fill tc ?(value = "base") n =
  for i = 0 to n - 1 do
    commit_one tc ~key:(Printf.sprintf "k%05d" i) ~value
  done

let stamp d tc =
  Deploy.quiesce d;
  Tc.force_log tc;
  Tc.stable_lsn tc

let br_commit br ~key ~value =
  let txn = Branch.begin_txn br in
  (match Branch.update br txn ~table ~key ~value with
  | `Ok () -> ()
  | `Blocked -> failwith "branch write blocked"
  | `Fail _ -> (
    match Branch.insert br txn ~table ~key ~value with
    | `Ok () -> ()
    | `Blocked | `Fail _ -> failwith "branch insert failed"));
  match Branch.commit br txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ -> failwith "branch commit failed"

let br_read br ~key =
  let txn = Branch.begin_txn br in
  let v =
    match Branch.read br txn ~table ~key with
    | `Ok v -> v
    | `Blocked | `Fail _ -> failwith "branch read failed"
  in
  (match Branch.commit br txn with
  | `Ok () -> ()
  | `Blocked | `Fail _ -> failwith "branch read-commit failed");
  v

(* --- 1: fork cost vs database size ------------------------------------ *)

(* Min-of-k forks per size: the minimum is robust against allocation
   and GC jitter at the microsecond scale where forks live. *)
let forks_per_size = 7

let run_fork_cost () =
  let sizes = [ 250; 1_000; 2_500 ] in
  let rows, mins =
    List.split
      (List.map
         (fun n ->
           let counters = Instrument.create () in
           let d, tc = make_deploy ~counters ~parts:2 () in
           fill tc n;
           let fork = stamp d tc in
           (* branch.fork_ns only records while timing is on *)
           Metrics.set_timed counters true;
           let copied = ref 0 in
           for i = 0 to forks_per_size - 1 do
             let name = Printf.sprintf "f%d" i in
             let br = Deploy.create_branch d ~from_lsn:fork ~name in
             copied := !copied + Branch.materialized_count br;
             Deploy.delete_branch d name
           done;
           Metrics.set_timed counters false;
           let s =
             match Metrics.hist_snapshot counters "branch.fork_ns" with
             | Some s -> s
             | None -> failwith "no branch.fork_ns samples"
           in
           if s.Metrics.s_count <> forks_per_size then
             failwith "missed fork samples";
           if !copied <> 0 then failwith "fork copied records";
           ( [
               string_of_int n;
               string_of_int (Lsn.to_int fork);
               Printf.sprintf "%.1f" (float_of_int s.Metrics.s_min /. 1e3);
               Printf.sprintf "%.1f"
                 (float_of_int (Metrics.percentile s 50.) /. 1e3);
               Printf.sprintf "%.1f" (float_of_int s.Metrics.s_max /. 1e3);
             ],
             (n, s.Metrics.s_min) ))
         sizes)
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf "E16: fork cost vs parent size (min of %d forks)"
         forks_per_size)
    ~header:[ "rows"; "fork lsn"; "min us"; "p50 us"; "max us" ]
    rows;
  mins

(* --- 2: branch read/write overhead vs mainline ------------------------- *)

let run_overhead () =
  let keys = 200 in
  let reads = 2_000 in
  let writes = 500 in
  let d, tc = make_deploy ~parts:2 () in
  fill tc keys;
  let fork = stamp d tc in
  let br = Deploy.create_branch d ~from_lsn:fork ~name:"b" in
  let key i = Printf.sprintf "k%05d" (i mod keys) in
  let parent_read () =
    for i = 0 to reads - 1 do
      if Tc.read_committed tc ~table ~key:(key i) = None then
        failwith "parent read missed"
    done
  in
  let branch_read () =
    for i = 0 to reads - 1 do
      if br_read br ~key:(key i) = None then failwith "branch read missed"
    done
  in
  (* first touch per key: the copy-on-write install *)
  let (), cold_s =
    Bench_util.time (fun () ->
        for i = 0 to keys - 1 do
          ignore (br_read br ~key:(key i))
        done)
  in
  let (), warm_s = Bench_util.time branch_read in
  let (), parent_s = Bench_util.time parent_read in
  let (), pw_s =
    Bench_util.time (fun () ->
        for i = 0 to writes - 1 do
          commit_one tc ~key:(key i) ~value:"pw"
        done)
  in
  let (), bw_s =
    Bench_util.time (fun () ->
        for i = 0 to writes - 1 do
          br_commit br ~key:(key i) ~value:"bw"
        done)
  in
  let us n s = Printf.sprintf "%.2f" (s *. 1e6 /. float_of_int n) in
  let ratio a b = Printf.sprintf "%.2f" (a /. b) in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E16: branch surface overhead (%d keys, %d reads, %d writes)" keys
         reads writes)
    ~header:[ "operation"; "us/op"; "vs parent" ]
    [
      [ "parent point read"; us reads parent_s; "1.00" ];
      [
        "branch first-touch read (CoW install)";
        us keys cold_s;
        ratio (cold_s /. float_of_int keys)
          (parent_s /. float_of_int reads);
      ];
      [
        "branch warm read";
        us reads warm_s;
        ratio (warm_s /. float_of_int reads) (parent_s /. float_of_int reads);
      ];
      [ "parent committed write"; us writes pw_s; "1.00" ];
      [
        "branch committed write (materialized)";
        us writes bw_s;
        ratio (bw_s /. float_of_int writes) (pw_s /. float_of_int writes);
      ];
    ];
  Deploy.delete_branch d "b"

(* --- 3: parent compaction + truncation under a live branch ------------ *)

let run_compaction_soak () =
  let rounds = 6 in
  let base_rows = 300 in
  let d, tc = make_deploy ~parts:2 () in
  fill tc base_rows;
  let fork = stamp d tc in
  let br = Deploy.create_branch d ~from_lsn:fork ~name:"b" in
  let m = Deploy.manager d ~tc:"tc1" in
  let store =
    match Repl.Manager.layer_store m with
    | Some s -> s
    | None -> failwith "no layer store"
  in
  let compactions = ref 0 and last_below = ref Lsn.zero in
  for r = 1 to rounds do
    for i = 0 to 49 do
      commit_one tc
        ~key:(Printf.sprintf "k%05d" ((r * 37) + (i * 3) mod base_rows))
        ~value:(Printf.sprintf "parent-r%d" r)
    done;
    for i = 0 to 24 do
      br_commit br
        ~key:(Printf.sprintf "k%05d" ((r * 53) + (i * 7) mod base_rows))
        ~value:(Printf.sprintf "branch-r%d" r)
    done;
    let stable = stamp d tc in
    Repl.Manager.compact_layers m;
    incr compactions;
    ignore (Deploy.truncate_history d ~below:stable);
    last_below := stable;
    Branch.quiesce br
  done;
  let cut = Layer.history_from store in
  let violations = Audit.check_branch d ~name:"b" ~table in
  (* the pin must have clamped every cut: the fork point still answers *)
  let fork_read =
    Deploy.read_as_of d ~table ~key:"k00000" ~at:fork = Some "base"
    && Branch.read_as_of br ~table ~key:"k00000" ~at:fork = Some "base"
  in
  Bench_util.print_table
    ~title:"E16: parent compaction + truncation under a live branch"
    ~header:
      [
        "rounds"; "compactions"; "fork lsn"; "asked cut"; "pinned cut";
        "violations";
      ]
    [
      [
        string_of_int rounds;
        string_of_int !compactions;
        string_of_int (Lsn.to_int fork);
        string_of_int (Lsn.to_int !last_below);
        string_of_int (Lsn.to_int cut);
        string_of_int (List.length violations);
      ];
    ];
  List.iter (fun v -> Printf.printf "  violation: %s\n" v) violations;
  (* the pin must have clamped every cut at the fork point exactly *)
  let clamped = cut = fork && Lsn.(!last_below > fork) in
  (violations, fork_read && clamped)

(* ----------------------------------------------------------------------- *)

let run () =
  let mins = run_fork_cost () in
  run_overhead ();
  let violations, fork_read = run_compaction_soak () in
  (* acceptance: fork cost flat across a 10x parent — a fork that
     scaled with the row count would blow an 8x allowance wide open *)
  let _, small = List.hd mins in
  let big_n, big = List.nth mins (List.length mins - 1) in
  let ratio = float_of_int big /. float_of_int (max 1 small) in
  if ratio > 8.0 then begin
    Printf.printf
      "E16 FAILED: fork at %d rows cost %.1fx the smallest parent\n" big_n
      ratio;
    exit 1
  end;
  if violations <> [] then begin
    Printf.printf "E16 FAILED: %d branch-parity violations after compaction\n"
      (List.length violations);
    exit 1
  end;
  if not fork_read then begin
    Printf.printf "E16 FAILED: fork-point read lost after truncation\n";
    exit 1
  end;
  Printf.printf "E16 ok: fork cost %.2fx across 10x rows, 0 violations\n"
    ratio
