(* E14 — The session front end: TC scale-out and overload shedding.

   Two sweeps over the M-TC × N-DC deployment behind
   {!Untx_front.Front}:

   1. TC count 1/2/4 over the same 2-partition DC tier and the same
      session workload — the Section 6 scale-out argument measured:
      each added TC is an independent log and lock space, so throughput
      should climb while per-transaction latency holds.

   2. Offered load swept well past saturation at a fixed 2-TC tier with
      deliberately small queues.  The acceptance gate is the PR's
      "shed, not collapse" contract: past saturation the front refuses
      admission (typed [`Overloaded], counted ["front.shed"]) and the
      p99 latency of the transactions it DID admit stays bounded —
      within [gate_factor]× of the pre-saturation p99 — instead of
      growing with the offered load.

   The closing digest re-runs a traced slice through
   {!Untx_obs.Analyzer} so the front.{admitted,shed,batched} counters
   show up in the span-dump summary alongside the hop timelines. *)

open Bench_util
module Deploy = Untx_cloud.Deploy
module Front = Untx_front.Front
module Transport = Untx_kernel.Transport
module Trace = Untx_obs.Trace
module Analyzer = Untx_obs.Analyzer

let sessions_per_tc = 4

let dc_parts = 2

(* One front over [tcs] TCs × [dc_parts] DCs; every TC owns one table
   partitioned over all DCs (disjoint updaters, Section 6). *)
let make_front ~counters ~tcs ~cfg =
  let d = Deploy.create ~counters ~policy:Transport.reliable ~seed:14 () in
  List.iter
    (fun i ->
      ignore
        (Deploy.add_tc d
           ~name:(Printf.sprintf "tc%d" i)
           { (Tc.default_config (Tc_id.of_int i)) with lwm_every = 16 }))
    (List.init tcs (fun i -> i + 1));
  let dcs = List.init dc_parts (Printf.sprintf "dc%d") in
  List.iter
    (fun n ->
      ignore
        (Deploy.add_dc d ~name:n
           { Dc.default_config with page_capacity = 256; cache_pages = 64 }))
    dcs;
  List.iter
    (fun i ->
      Deploy.add_partitioned_table d
        ~name:(Printf.sprintf "t%d" i)
        ~versioned:false ~dcs ())
    (List.init tcs (fun i -> i + 1));
  (d, Front.create ~counters ~cfg d)

(* Drive [total] single-write transactions through [front], submitting
   up to [offered] per round and pumping [served] per round; submission
   overlapping execution is what fills group-commit batches.  Records
   per-transaction submit→done latency (measured at round granularity)
   and returns (completed, shed, latency histogram name). *)
let drive ~counters ~front ~sess ~total ~offered ~served =
  let lat = "front.txn_latency_ns" in
  let born = Hashtbl.create total in
  let live = ref [] in
  let submitted = ref 0 and completed = ref 0 and shed = ref 0 in
  let session_of = Array.of_list sess in
  let n_sess = Array.length session_of in
  while !submitted < total || !live <> [] do
    (* offer: a refused transaction is gone — the client sheds, it does
       not retry forever *)
    let to_offer = min offered (total - !submitted) in
    List.iter
      (fun j ->
        let n = !submitted + j in
        let s = session_of.(n mod n_sess) in
        let table =
          Printf.sprintf "t%d"
            (Tc_id.to_int (Tc.id (Front.tc_of_session front s)))
        in
        let ops =
          [
            Front.Insert
              {
                table;
                key = Printf.sprintf "s%d-k%06d" (Front.session_id s) n;
                value = Printf.sprintf "v%d" n;
              };
          ]
        in
        match Front.submit front s ops with
        | `Ticket k ->
          Hashtbl.replace born k (Unix.gettimeofday ());
          live := k :: !live
        | `Overloaded _ -> incr shed)
      (List.init to_offer Fun.id);
    submitted := !submitted + to_offer;
    (* serve *)
    ignore (Front.pump ~budget:served front);
    let now = Unix.gettimeofday () in
    live :=
      List.filter
        (fun k ->
          match Front.poll front k with
          | `Pending -> true
          | `Done _ ->
            incr completed;
            let ns = int_of_float ((now -. Hashtbl.find born k) *. 1e9) in
            Metrics.observe counters lat ns;
            false)
        !live
  done;
  Front.drain front;
  (!completed, !shed, lat)

(* --- sweep 1: TC count -------------------------------------------------- *)

let run_scaling () =
  let total = 2_000 in
  let rows =
    List.map
      (fun tcs ->
        let counters = Instrument.create () in
        Metrics.set_timed counters true;
        let cfg =
          { Front.max_sessions = tcs * sessions_per_tc; session_queue = 8;
            total_queue = 64 * tcs; batch = 4 }
        in
        let _d, front = make_front ~counters ~tcs ~cfg in
        let sess =
          List.init (tcs * sessions_per_tc) (fun _ ->
              Front.open_session front)
        in
        let (completed, shed, lat), t =
          time (fun () ->
              drive ~counters ~front ~sess ~total ~offered:(8 * tcs)
                ~served:(8 * tcs))
        in
        let snap =
          Option.value ~default:Metrics.empty_hsnap
            (Metrics.hist_snapshot counters lat)
        in
        [
          string_of_int tcs;
          string_of_int completed;
          string_of_int shed;
          fmt_f (float_of_int completed /. t);
          Metrics.fmt_ns (Metrics.percentile snap 50.);
          Metrics.fmt_ns (Metrics.percentile snap 99.);
          string_of_int (Instrument.get counters "front.batched");
        ])
      [ 1; 2; 4 ]
  in
  print_table ~title:"E14  Throughput and latency vs TC count (2 DC partitions)"
    ~header:[ "TCs"; "committed"; "shed"; "txns/s"; "p50"; "p99"; "batched" ]
    rows

(* --- sweep 2: offered load past saturation ------------------------------ *)

let gate_factor = 8

let run_overload () =
  let tcs = 2 in
  let total = 1_200 in
  let loads = [ 4; 8; 16; 32; 64 ] in
  let measured =
    List.map
      (fun offered ->
        let counters = Instrument.create () in
        Metrics.set_timed counters true;
        (* small queues: saturation shows up as shed admissions, not as
           an ever-growing backlog *)
        let cfg =
          { Front.max_sessions = tcs * sessions_per_tc; session_queue = 4;
            total_queue = 16; batch = 4 }
        in
        let _d, front = make_front ~counters ~tcs ~cfg in
        let sess =
          List.init (tcs * sessions_per_tc) (fun _ ->
              Front.open_session front)
        in
        let (completed, shed, lat), t =
          time (fun () ->
              drive ~counters ~front ~sess ~total ~offered ~served:8)
        in
        let snap =
          Option.value ~default:Metrics.empty_hsnap
            (Metrics.hist_snapshot counters lat)
        in
        (offered, completed, shed, t, Metrics.percentile snap 99.))
      loads
  in
  print_table
    ~title:
      (Printf.sprintf
         "E14  Offered load past saturation (%d TCs, queues 4/16, serve 8 per \
          round)"
         tcs)
    ~header:[ "offered/round"; "completed"; "shed"; "txns/s"; "p99" ]
    (List.map
       (fun (o, c, s, t, p99) ->
         [
           string_of_int o;
           string_of_int c;
           string_of_int s;
           fmt_f (float_of_int c /. t);
           Metrics.fmt_ns p99;
         ])
       measured);
  (* the gate: p99 of ADMITTED work at the heaviest load stays within
     gate_factor of the lightest load's p99 — overload was refused at
     the door, not queued into collapse *)
  let p99_of (_, _, _, _, p) = p in
  let base = max 1 (p99_of (List.hd measured)) in
  let worst =
    List.fold_left (fun acc m -> max acc (p99_of m)) 0 measured
  in
  let heaviest_shed =
    let _, _, s, _, _ = List.nth measured (List.length measured - 1) in
    s
  in
  Printf.printf
    "gate: p99 %s at heaviest load vs %s baseline (factor %.1f, bound %dx) — \
     %s; heaviest load shed %d\n"
    (Metrics.fmt_ns worst) (Metrics.fmt_ns base)
    (float_of_int worst /. float_of_int base)
    gate_factor
    (if worst <= gate_factor * base && heaviest_shed > 0 then
       "SHED, NOT COLLAPSE"
     else "GATE FAILED")
    heaviest_shed

(* --- traced digest ------------------------------------------------------ *)

let run_digest () =
  let counters = Instrument.create () in
  let cfg =
    { Front.max_sessions = 4; session_queue = 2; total_queue = 6; batch = 2 }
  in
  let _d, front = make_front ~counters ~tcs:2 ~cfg in
  let sess = List.init 4 (fun _ -> Front.open_session front) in
  Trace.clear ();
  Trace.set_enabled true;
  ignore (drive ~counters ~front ~sess ~total:60 ~offered:12 ~served:4);
  Trace.set_enabled false;
  let report = Analyzer.analyze (Analyzer.of_jsonl (Trace.to_jsonl ())) in
  Format.printf
    "@[<v>E14  Analyzer digest of a traced overloaded slice:@,%a@]@."
    Analyzer.pp_summary report;
  Trace.clear ()

let run () =
  run_scaling ();
  run_overload ();
  run_digest ()
